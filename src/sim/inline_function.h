#ifndef REDY_SIM_INLINE_FUNCTION_H_
#define REDY_SIM_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace redy::sim {

/// Move-only `void()` callable with a small-buffer-optimized inline
/// storage of kInlineCapacity bytes. The event hot path schedules
/// millions of lambdas per simulated second; std::function costs a heap
/// allocation (and a deep copy on priority_queue pop) for anything past
/// its tiny SBO and requires copyability. InlineFunction stores any
/// callable up to the capacity in place, moves instead of copying, and
/// falls back to a single heap allocation only for oversized captures.
///
/// Hot call sites static_assert `fits_inline<F>()` so a capture-list
/// growth that would silently de-optimize the scheduler fails the build
/// instead (see queue_pair.cc / poller.h).
class InlineFunction {
 public:
  /// Inline capture budget. Sized so the engine's hot lambdas (a `this`
  /// pointer plus a handful of scalars, or a WorkCompletion and a
  /// timestamp) fit with room to spare, while an EventRec stays within
  /// two cache lines.
  static constexpr size_t kInlineCapacity = 64;

  /// True iff F is stored in place (no allocation on construction).
  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineCapacity &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    Construct(std::forward<F>(f));
  }

  /// Destroys the current callable (if any) and constructs `f` directly
  /// in place — no intermediate InlineFunction, no relocate. The event
  /// hot path uses this to build callbacks straight into pooled records.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void Emplace(F&& f) {
    Reset();
    Construct(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into dst's raw storage and destroys src's value.
    /// nullptr means "memcpy the storage": the callable is trivially
    /// copyable, so relocation needs no indirect call.
    void (*relocate)(void* src, void* dst) noexcept;
    /// nullptr means trivially destructible: Reset() skips the indirect
    /// call entirely. The engine fires millions of trivially-copyable
    /// lambdas per second, so these two nulls drop the per-event
    /// indirect-call count from three to one (the invoke).
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr bool trivial_inline() {
    return fits_inline<F>() && std::is_trivially_copyable_v<F> &&
           std::is_trivially_destructible_v<F>;
  }

  template <typename Fn>
  static constexpr Ops kTrivialOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      nullptr,
      nullptr,
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* src, void* dst) noexcept {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
      },
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  template <typename F>
  void Construct(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (trivial_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kTrivialOps<Fn>;
    } else if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &kHeapOps<Fn>;
    }
  }

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.storage_, storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace redy::sim

#endif  // REDY_SIM_INLINE_FUNCTION_H_
