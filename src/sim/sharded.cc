#include "sim/sharded.h"

namespace redy::sim {

ShardedEngine::ShardedEngine(const Options& opts)
    : lookahead_(opts.lookahead_ns),
      workers_(std::max<uint32_t>(
          1, std::min(opts.workers, std::max<uint32_t>(1, opts.partitions)))),
      barrier_(std::max<uint32_t>(
          1, std::min(opts.workers, std::max<uint32_t>(1, opts.partitions)))),
      worker_min_(workers_) {
  REDY_CHECK(opts.partitions >= 1);
  REDY_CHECK(opts.lookahead_ns >= 1);
  parts_.reserve(opts.partitions);
  for (uint32_t p = 0; p < opts.partitions; p++) {
    auto part = std::make_unique<Partition>();
    part->in.resize(opts.partitions);
    for (uint32_t src = 0; src < opts.partitions; src++) {
      if (src == p) continue;
      part->in[src] = std::make_unique<Channel>(opts.channel_capacity);
    }
    parts_.push_back(std::move(part));
  }
  for (uint32_t w = 1; w < workers_; w++) {
    helpers_.emplace_back([this, w] { HelperMain(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : helpers_) t.join();
}

void ShardedEngine::HelperMain(uint32_t w) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || run_seq_ > seen; });
      if (stop_) return;
      seen = run_seq_;
    }
    WorkerLoop(w);
  }
}

void ShardedEngine::DrainInbox(Partition& part) {
  auto& buf = part.drain_buf;
  buf.clear();
  for (auto& chp : part.in) {
    if (chp == nullptr) continue;
    Channel& ch = *chp;
    while (auto m = ch.ring.TryPop()) buf.push_back(std::move(*m));
    if (!ch.spill.empty()) {
      for (auto& m : ch.spill) buf.push_back(std::move(m));
      ch.spill.clear();
    }
  }
  if (buf.empty()) return;
  // Deliveries are a total order, not an arrival order: sorting by
  // (time, source partition, channel sequence) makes the destination's
  // schedule independent of which thread got where first.
  std::sort(buf.begin(), buf.end(), [](const Msg& a, const Msg& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (auto& m : buf) {
    // The window invariant guarantees m.time >= the partition's clock
    // (see the class comment's proof sketch), so At() never clamps.
    REDY_CHECK(m.time >= part.sim.Now());
    part.sim.At(m.time, std::move(m.fn));
  }
  buf.clear();
}

void ShardedEngine::PickWindow() {
  SimTime m = Simulation::kNoEvent;
  for (uint32_t i = 0; i < workers_; i++) m = std::min(m, worker_min_[i].v);
  rounds_++;
  if (m == Simulation::kNoEvent || m > target_) {
    // Nothing left at or before the target: one final advance pins
    // every clock to the bound. Events running at exactly target_ were
    // handled by a previous (non-final) round, so no sends can land in
    // this one.
    window_end_ = target_;
    last_round_ = true;
    return;
  }
  window_end_ =
      (target_ - m > lookahead_) ? m + lookahead_ : target_;
  last_round_ = false;
}

void ShardedEngine::WorkerLoop(uint32_t w) {
  const uint32_t n = partitions();
  for (;;) {
    // Drain phase: ingest cross-partition messages, then report the
    // earliest pending event across this worker's partitions.
    SimTime local_min = Simulation::kNoEvent;
    for (uint32_t p = w; p < n; p += workers_) {
      Partition& part = *parts_[p];
      DrainInbox(part);
      local_min = std::min(local_min, part.sim.NextEventTime());
    }
    worker_min_[w].v = local_min;
    barrier_.ArriveAndWait([this] { PickWindow(); });

    // Window phase: run the safe window in parallel.
    const SimTime u = window_end_;
    const bool done = last_round_;
    for (uint32_t p = w; p < n; p += workers_) {
      parts_[p]->sim.RunUntil(u);
    }
    // The trailing barrier separates this round's producers from the
    // next round's drains (no channel is ever touched from both ends
    // concurrently) and, on the last round, keeps RunUntil from
    // returning while a helper still runs.
    barrier_.ArriveAndWait([] {});
    if (done) return;
  }
}

void ShardedEngine::RunUntil(SimTime until) {
  REDY_CHECK(until >= parts_[0]->sim.Now());
  target_ = until;
  running_ = true;
  if (workers_ > 1) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      run_seq_++;
    }
    cv_.notify_all();
  }
  WorkerLoop(0);
  running_ = false;
}

uint64_t ShardedEngine::events_executed() const {
  uint64_t total = 0;
  for (const auto& p : parts_) total += p->sim.events_executed();
  return total;
}

uint64_t ShardedEngine::messages_sent() const {
  uint64_t total = 0;
  for (const auto& p : parts_) {
    for (const auto& ch : p->in) {
      if (ch != nullptr) total += ch->sent;
    }
  }
  return total;
}

uint64_t ShardedEngine::messages_spilled() const {
  uint64_t total = 0;
  for (const auto& p : parts_) {
    for (const auto& ch : p->in) {
      if (ch != nullptr) total += ch->spilled;
    }
  }
  return total;
}

}  // namespace redy::sim
