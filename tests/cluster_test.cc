#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "cluster/trace.h"
#include "cluster/vm_allocator.h"
#include "cluster/vm_types.h"
#include "common/units.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace redy {
namespace {

using cluster::TraceConfig;
using cluster::Vm;
using cluster::VmAllocator;
using cluster::WorkloadTrace;

class VmAllocatorTest : public ::testing::Test {
 protected:
  VmAllocatorTest()
      : topo_(2, 2, 4),
        alloc_(&sim_, &topo_, /*cores=*/16, /*memory=*/64 * kGiB) {}

  sim::Simulation sim_;
  net::Topology topo_;
  VmAllocator alloc_;
};

TEST_F(VmAllocatorTest, AllocateAndFreeAccounting) {
  auto vm = alloc_.Allocate(4, 16 * kGiB, false);
  ASSERT_TRUE(vm.ok());
  const auto& s = alloc_.server(vm->server);
  EXPECT_EQ(s.cores_used, 4u);
  EXPECT_EQ(s.memory_used, 16 * kGiB);
  alloc_.Free(vm->id);
  EXPECT_EQ(alloc_.server(vm->server).cores_used, 0u);
  EXPECT_EQ(alloc_.UnallocatedMemory(), alloc_.TotalMemory());
}

TEST_F(VmAllocatorTest, RejectsWhenNoCapacity) {
  // Fill everything.
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(alloc_.Allocate(16, 64 * kGiB, false).ok());
  }
  EXPECT_TRUE(alloc_.Allocate(1, kGiB, false).status().IsResourceExhausted());
}

TEST_F(VmAllocatorTest, NearServerPrefersCloser) {
  // Ask for a VM near server 0 with tight hops: must land in its rack.
  auto vm = alloc_.Allocate(4, 16 * kGiB, false, net::ServerId{0},
                            /*max_hops=*/1);
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(topo_.SwitchHops(0, vm->server), 1);
}

TEST_F(VmAllocatorTest, MemoryOnlyRequiresStrandedServer) {
  // No stranded servers yet.
  auto r = alloc_.Allocate(0, 2 * kGiB, false, std::nullopt, 5,
                           /*memory_only=*/true);
  EXPECT_TRUE(r.status().IsResourceExhausted());

  // Strand server: use all 16 cores but only part of the memory.
  auto vm = alloc_.Allocate(16, 8 * kGiB, false);
  ASSERT_TRUE(vm.ok());
  EXPECT_TRUE(alloc_.server(vm->server).stranded());

  auto r2 = alloc_.Allocate(0, 2 * kGiB, false, std::nullopt, 5, true);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->server, vm->server);
  EXPECT_TRUE(r2->memory_only);
}

TEST_F(VmAllocatorTest, StrandedMemoryAccounting) {
  auto vm = alloc_.Allocate(16, 8 * kGiB, false);
  ASSERT_TRUE(vm.ok());
  EXPECT_EQ(alloc_.StrandedMemory(), 56 * kGiB);
  // Reachability from another server in the same rack at 1 hop.
  net::ServerId other = vm->server == 0 ? 1 : 0;
  EXPECT_EQ(alloc_.ReachableStranded(other, 1), 56 * kGiB);
}

TEST_F(VmAllocatorTest, SpotReclaimGivesNoticeThenFrees) {
  auto vm = alloc_.Allocate(4, 16 * kGiB, /*spot=*/true);
  ASSERT_TRUE(vm.ok());

  bool notified = false;
  sim::SimTime deadline = 0;
  alloc_.SetReclaimHandler([&](const Vm& v, sim::SimTime d) {
    notified = true;
    deadline = d;
    EXPECT_EQ(v.id, vm->id);
  });
  ASSERT_TRUE(alloc_.Reclaim(vm->id).ok());
  EXPECT_TRUE(notified);
  EXPECT_EQ(deadline, sim_.Now() + 30 * kSecond);
  // VM still alive until the deadline.
  EXPECT_NE(alloc_.Find(vm->id), nullptr);
  sim_.RunUntil(deadline + 1);
  EXPECT_EQ(alloc_.Find(vm->id), nullptr);
}

TEST_F(VmAllocatorTest, ReclaimNonSpotFails) {
  auto vm = alloc_.Allocate(4, 16 * kGiB, /*spot=*/false);
  ASSERT_TRUE(vm.ok());
  EXPECT_TRUE(alloc_.Reclaim(vm->id).IsFailedPrecondition());
}

TEST_F(VmAllocatorTest, FailServerEvictsEverything) {
  auto vm1 = alloc_.Allocate(4, 16 * kGiB, false);
  ASSERT_TRUE(vm1.ok());
  int notices = 0;
  alloc_.SetReclaimHandler(
      [&](const Vm&, sim::SimTime d) {
        notices++;
        EXPECT_EQ(d, sim_.Now());  // no early warning on failure
      });
  alloc_.FailServer(vm1->server);
  EXPECT_EQ(notices, 1);
  EXPECT_EQ(alloc_.Find(vm1->id), nullptr);
}

// --- Capacity waitlist fairness (DESIGN.md §12) -----------------------------
//
// Recovery paths park on WaitForCapacity when allocation fails; under a
// reclamation storm many of them re-arm continuously. The waitlist must
// stay FIFO so the oldest parked recovery is never starved by newer
// arrivals.

TEST_F(VmAllocatorTest, CapacityWaitersFireInRegistrationOrder) {
  auto vm = alloc_.Allocate(4, 16 * kGiB, false);
  ASSERT_TRUE(vm.ok());
  std::vector<int> fired;
  for (int i = 0; i < 4; i++) {
    alloc_.WaitForCapacity([&fired, i] { fired.push_back(i); });
  }
  alloc_.Free(vm->id);
  sim_.RunFor(1);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
  // One-shot: the next capacity event fires nobody again.
  auto vm2 = alloc_.Allocate(4, 16 * kGiB, false);
  ASSERT_TRUE(vm2.ok());
  alloc_.Free(vm2->id);
  sim_.RunFor(1);
  EXPECT_EQ(fired.size(), 4u);
}

TEST_F(VmAllocatorTest, WaiterStormDoesNotStarveOldestWaiter) {
  // The oldest waiter and four storm waiters all re-arm from inside
  // their callbacks, round after round. Because firing is registration-
  // ordered and the oldest re-registers first (its callback runs
  // first), it must lead every round — a storm of re-arming newcomers
  // cannot push it back in line.
  std::vector<int> order;
  std::function<void()> oldest = [&] {
    order.push_back(0);
    alloc_.WaitForCapacity(oldest);
  };
  alloc_.WaitForCapacity(oldest);
  std::function<void()> storm[4];
  for (int i = 0; i < 4; i++) {
    storm[i] = [&, i] {
      order.push_back(i + 1);
      alloc_.WaitForCapacity(storm[i]);
    };
    alloc_.WaitForCapacity(storm[i]);
  }
  for (int round = 0; round < 3; round++) {
    auto vm = alloc_.Allocate(4, 16 * kGiB, false);
    ASSERT_TRUE(vm.ok());
    order.clear();
    alloc_.Free(vm->id);
    sim_.RunFor(1);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}))
        << "round " << round << ": oldest waiter must fire first";
  }
}

TEST_F(VmAllocatorTest, CancelledCapacityWaiterNeverFires) {
  std::vector<int> fired;
  alloc_.WaitForCapacity([&] { fired.push_back(0); });
  const uint64_t mid = alloc_.WaitForCapacity([&] { fired.push_back(1); });
  alloc_.WaitForCapacity([&] { fired.push_back(2); });
  EXPECT_TRUE(alloc_.CancelWaitForCapacity(mid));
  EXPECT_FALSE(alloc_.CancelWaitForCapacity(mid)) << "already removed";
  auto vm = alloc_.Allocate(4, 16 * kGiB, false);
  ASSERT_TRUE(vm.ok());
  alloc_.Free(vm->id);
  sim_.RunFor(1);
  EXPECT_EQ(fired, (std::vector<int>{0, 2}));
}

TEST(VmTypesTest, MenuIsSane) {
  auto menu = cluster::DefaultVmMenu();
  ASSERT_FALSE(menu.empty());
  for (const auto& t : menu) {
    EXPECT_GT(t.cores, 0u);
    EXPECT_GT(t.memory_bytes, 0u);
    EXPECT_GT(t.price_per_hour, 0.0);
    EXPECT_LT(t.spot_price_per_hour, t.price_per_hour);
  }
  auto stranded = cluster::StrandedMemoryType(8 * kGiB);
  EXPECT_EQ(stranded.cores, 0u);
  EXPECT_LT(stranded.price_per_hour, 0.01);
}

TEST(WorkloadTraceTest, ReproducesPaperScaleStatistics) {
  // Small-but-representative cluster; the paper reports 46% median
  // unallocated and ~8% median stranded memory. The synthetic trace
  // should land in the same regime (Section 2.1).
  sim::Simulation sim;
  net::Topology topo(2, 4, 20);
  VmAllocator alloc(&sim, &topo, 64, 448 * kGiB);
  TraceConfig cfg;
  cfg.warmup = 2 * kHour;
  cfg.duration = 6 * kHour;
  cfg.seed = 7;
  WorkloadTrace trace(&sim, &alloc, cfg);
  trace.Run();

  ASSERT_GT(trace.vms_started(), 1000u);
  const double unalloc = WorkloadTrace::MedianUnallocated(trace.samples());
  const double stranded = WorkloadTrace::MedianStranded(trace.samples());
  EXPECT_GT(unalloc, 0.25);
  EXPECT_LT(unalloc, 0.65);
  EXPECT_GT(stranded, 0.02);
  EXPECT_LT(stranded, 0.25);

  // Stranding events exist and have minute-scale durations.
  ASSERT_GT(trace.stranding_durations().size(), 20u);
  std::vector<uint64_t> d = trace.stranding_durations();
  std::sort(d.begin(), d.end());
  const double median_min = ToSeconds(d[d.size() / 2]) / 60.0;
  EXPECT_GT(median_min, 1.0);
  EXPECT_LT(median_min, 60.0);
}

TEST(WorkloadTraceTest, DeterministicForSameSeed) {
  auto run = [] {
    sim::Simulation sim;
    net::Topology topo(1, 2, 10);
    VmAllocator alloc(&sim, &topo, 32, 128 * kGiB);
    TraceConfig cfg;
    cfg.warmup = kHour;
    cfg.duration = 2 * kHour;
    cfg.seed = 123;
    WorkloadTrace trace(&sim, &alloc, cfg);
    trace.Run();
    return trace.vms_started();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace redy
