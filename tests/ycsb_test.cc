#include <gtest/gtest.h>

#include <map>

#include "faster/devices.h"
#include "faster/store.h"
#include "sim/simulation.h"
#include "ycsb/driver.h"
#include "ycsb/workload.h"

namespace redy {
namespace {

using ycsb::Distribution;
using ycsb::Driver;
using ycsb::Workload;
using ycsb::WorkloadConfig;

TEST(YcsbWorkloadTest, UniformCoversKeySpaceEvenly) {
  WorkloadConfig cfg;
  cfg.records = 100;
  cfg.distribution = Distribution::kUniform;
  Workload w(cfg, 0);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    uint64_t k = w.NextKey();
    ASSERT_LT(k, cfg.records);
    counts[k]++;
  }
  // Every key hit, none wildly over-represented.
  EXPECT_EQ(counts.size(), cfg.records);
  for (auto& [k, c] : counts) {
    EXPECT_GT(c, n / 100 / 3);
    EXPECT_LT(c, n / 100 * 3);
  }
}

TEST(YcsbWorkloadTest, ZipfianIsSkewed) {
  WorkloadConfig cfg;
  cfg.records = 100000;
  cfg.distribution = Distribution::kZipfian;
  Workload w(cfg, 0);
  std::map<uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; i++) counts[w.NextKey()]++;
  // Scrambled Zipf: far fewer distinct keys touched than uniform would.
  EXPECT_LT(counts.size(), 60000u);
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, n / 100);  // one key gets >1% of traffic
}

TEST(YcsbWorkloadTest, ThreadsGetIndependentStreams) {
  WorkloadConfig cfg;
  cfg.records = 1 << 20;
  Workload a(cfg, 0), b(cfg, 1);
  int same = 0;
  for (int i = 0; i < 1000; i++) {
    if (a.NextKey() == b.NextKey()) same++;
  }
  EXPECT_LT(same, 10);
}

TEST(YcsbWorkloadTest, ReadFractionIsRespected) {
  WorkloadConfig cfg;
  cfg.read_fraction = 0.5;
  Workload w(cfg, 0);
  int reads = 0;
  for (int i = 0; i < 10000; i++) {
    if (w.NextIsRead()) reads++;
  }
  EXPECT_NEAR(reads, 5000, 300);
  cfg.read_fraction = 1.0;
  Workload all_reads(cfg, 0);
  for (int i = 0; i < 100; i++) EXPECT_TRUE(all_reads.NextIsRead());
}

TEST(YcsbDriverTest, RunsAgainstLocalDeviceAndCountsOps) {
  sim::Simulation sim;
  faster::LocalMemoryDevice dev(&sim);
  faster::FasterKv::Options fo;
  fo.log_memory_bytes = kMiB;
  fo.value_bytes = 8;
  faster::FasterKv kv(&sim, &dev, fo);

  Driver::Options d;
  d.threads = 2;
  d.warmup = kMillisecond;
  d.window = 10 * kMillisecond;
  d.workload.records = 10000;
  Driver driver(&sim, &kv, d);
  ASSERT_TRUE(driver.Load().ok());
  auto r = driver.Run();
  EXPECT_GT(r.ops, 1000u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.mops, 0.1);
  EXPECT_EQ(r.store_stats.reads,
            r.store_stats.mem_hits + r.store_stats.read_cache_hits +
                r.store_stats.device_reads + r.store_stats.not_found);
}

TEST(YcsbDriverTest, MixedWorkloadDoesUpserts) {
  sim::Simulation sim;
  faster::LocalMemoryDevice dev(&sim);
  faster::FasterKv::Options fo;
  fo.log_memory_bytes = kMiB;
  faster::FasterKv kv(&sim, &dev, fo);

  Driver::Options d;
  d.threads = 1;
  d.warmup = kMillisecond;
  d.window = 5 * kMillisecond;
  d.workload.records = 1000;
  d.workload.read_fraction = 0.5;
  Driver driver(&sim, &kv, d);
  ASSERT_TRUE(driver.Load().ok());
  auto r = driver.Run();
  EXPECT_GT(r.store_stats.upserts, 100u);
  EXPECT_GT(r.store_stats.reads, 100u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(YcsbDriverTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulation sim;
    faster::LocalMemoryDevice dev(&sim);
    faster::FasterKv::Options fo;
    fo.log_memory_bytes = kMiB;
    faster::FasterKv kv(&sim, &dev, fo);
    Driver::Options d;
    d.threads = 2;
    d.warmup = kMillisecond;
    d.window = 5 * kMillisecond;
    d.workload.records = 5000;
    Driver driver(&sim, &kv, d);
    driver.Load();
    return driver.Run().ops;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace redy
