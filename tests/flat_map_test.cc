// common::FlatMap unit tests: basic insert/find/erase semantics, the
// single-probe Take() completion idiom, backward-shift deletion across
// table wraparound, Reserve's no-rehash guarantee, and a long
// randomized parity run against std::unordered_map.

#include "common/flat_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/random.h"

namespace redy {
namespace {

using common::FlatMap;

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(42), nullptr);

  m.Insert(42, 7);
  ASSERT_NE(m.Find(42), nullptr);
  EXPECT_EQ(*m.Find(42), 7);
  EXPECT_EQ(m.size(), 1u);

  m.Insert(42, 9);  // overwrite, not duplicate
  EXPECT_EQ(*m.Find(42), 9);
  EXPECT_EQ(m.size(), 1u);

  EXPECT_TRUE(m.Erase(42));
  EXPECT_FALSE(m.Erase(42));
  EXPECT_EQ(m.Find(42), nullptr);
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, OperatorIndexDefaultConstructs) {
  FlatMap<uint32_t> m;
  m[5]++;
  m[5]++;
  m[9]++;
  EXPECT_EQ(*m.Find(5), 2u);
  EXPECT_EQ(*m.Find(9), 1u);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMapTest, TakeMovesOutAndErases) {
  FlatMap<std::string> m;
  m.Insert(1, std::string("hello"));
  std::string out;
  EXPECT_TRUE(m.Take(1, &out));
  EXPECT_EQ(out, "hello");
  EXPECT_EQ(m.Find(1), nullptr);
  EXPECT_FALSE(m.Take(1, &out));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMapTest, ClearReleasesEntries) {
  FlatMap<int> m;
  for (uint64_t k = 0; k < 100; k++) m.Insert(k, static_cast<int>(k));
  m.Clear();
  EXPECT_TRUE(m.empty());
  for (uint64_t k = 0; k < 100; k++) EXPECT_EQ(m.Find(k), nullptr);
  // Reusable after Clear.
  m.Insert(3, 33);
  EXPECT_EQ(*m.Find(3), 33);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryOnce) {
  FlatMap<uint64_t> m;
  for (uint64_t k = 100; k < 164; k++) m.Insert(k, k * 2);
  std::vector<std::pair<uint64_t, uint64_t>> seen;
  m.ForEach([&](uint64_t k, uint64_t v) { seen.emplace_back(k, v); });
  ASSERT_EQ(seen.size(), 64u);
  std::sort(seen.begin(), seen.end());
  for (uint64_t i = 0; i < 64; i++) {
    EXPECT_EQ(seen[i].first, 100 + i);
    EXPECT_EQ(seen[i].second, (100 + i) * 2);
  }
}

TEST(FlatMapTest, ReservePreventsRehash) {
  FlatMap<int> m;
  m.Reserve(1000);
  const size_t cap = m.capacity();
  // Reserve must leave room for n entries under the 70% load factor.
  EXPECT_LT(1000u * 10, cap * 7);
  for (uint64_t k = 0; k < 1000; k++) m.Insert(k, 1);
  EXPECT_EQ(m.capacity(), cap);  // no rehash while within the reserve
}

TEST(FlatMapTest, GrowsPastLoadFactorAndKeepsEntries) {
  FlatMap<uint64_t> m;  // starts at capacity 16
  const size_t initial_cap = m.capacity();
  for (uint64_t k = 0; k < 10000; k++) m.Insert(k ^ 0x9e3779b9, k);
  EXPECT_GT(m.capacity(), initial_cap);
  EXPECT_EQ(m.size(), 10000u);
  for (uint64_t k = 0; k < 10000; k++) {
    const uint64_t* v = m.Find(k ^ 0x9e3779b9);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, k);
  }
}

// Backward-shift deletion must relocate entries whose probe chain
// wraps past the end of the slot array. Brute-force keys whose hash
// lands on the last slot of a capacity-16 table, chain several of them
// through the wraparound, then erase the chain head.
TEST(FlatMapTest, BackwardShiftAcrossWraparound) {
  FlatMap<uint64_t> m(16);
  ASSERT_EQ(m.capacity(), 16u);
  const size_t mask = m.capacity() - 1;
  std::vector<uint64_t> tail_keys;
  for (uint64_t k = 0; tail_keys.size() < 5; k++) {
    if ((SplitMix64(k) & mask) == mask) tail_keys.push_back(k);
  }
  // All five collide on slot 15: the chain occupies 15, 0, 1, 2, 3.
  for (uint64_t k : tail_keys) m.Insert(k, k + 1000);
  for (uint64_t k : tail_keys) {
    ASSERT_NE(m.Find(k), nullptr);
    EXPECT_EQ(*m.Find(k), k + 1000);
  }
  // Erase the head: every wrapped entry must shift back and stay
  // findable.
  EXPECT_TRUE(m.Erase(tail_keys[0]));
  for (size_t i = 1; i < tail_keys.size(); i++) {
    ASSERT_NE(m.Find(tail_keys[i]), nullptr) << "lost key after wrap shift";
    EXPECT_EQ(*m.Find(tail_keys[i]), tail_keys[i] + 1000);
  }
  // Erase from the middle of the wrapped run too.
  EXPECT_TRUE(m.Erase(tail_keys[2]));
  EXPECT_NE(m.Find(tail_keys[1]), nullptr);
  EXPECT_NE(m.Find(tail_keys[3]), nullptr);
  EXPECT_NE(m.Find(tail_keys[4]), nullptr);
}

// Long randomized parity run against unordered_map: mixed inserts,
// overwrites, erases, takes, and lookups with a key range small enough
// to force constant collision churn.
TEST(FlatMapTest, RandomizedParityWithUnorderedMap) {
  FlatMap<uint64_t> m;
  std::unordered_map<uint64_t, uint64_t> ref;
  std::mt19937_64 rng(0xF1A7);
  for (int step = 0; step < 200000; step++) {
    const uint64_t key = rng() % 512;
    switch (rng() % 4) {
      case 0: {  // insert/overwrite
        const uint64_t v = rng();
        m.Insert(key, v);
        ref[key] = v;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
        break;
      }
      case 2: {  // take
        uint64_t out = 0;
        auto it = ref.find(key);
        const bool took = m.Take(key, &out);
        EXPECT_EQ(took, it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(out, it->second);
          ref.erase(it);
        }
        break;
      }
      default: {  // lookup
        const uint64_t* v = m.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v != nullptr) {
          EXPECT_EQ(*v, it->second);
        }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final content parity.
  std::vector<std::pair<uint64_t, uint64_t>> got;
  m.ForEach([&](uint64_t k, uint64_t v) { got.emplace_back(k, v); });
  std::vector<std::pair<uint64_t, uint64_t>> want(ref.begin(), ref.end());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace redy
