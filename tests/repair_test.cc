// Tests for the re-replication repair loop of the recovery supervisor:
// restoring the replication factor after failover (with anti-affinity),
// parking on the allocator's capacity waitlist when the cluster is
// full, bounded give-up, and leak-freedom of the target allocations.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/vm_allocator.h"
#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class RepairTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 20'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  static bool AllReplicated(Testbed& tb, CacheClient::CacheId id,
                            uint32_t regions) {
    for (uint32_t r = 0; r < regions; r++) {
      auto rep = tb.client().RegionReplicated(id, r);
      if (!rep.ok() || !*rep) return false;
    }
    return true;
  }
};

TEST_F(RepairTest, RepairRestoresReplicasWithAntiAffinity) {
  Testbed tb(Opts());
  tb.EnableInvariantChecks();
  auto id_or =
      tb.client().CreateReplicated(4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "survives repair";
  bool wrote = false;
  ASSERT_TRUE(tb.client()
                  .Write(id, 64, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return wrote; }));
  tb.RecordAckedBytes(id, 64, msg, sizeof(msg));

  // Kill the primary's server: every region it hosted fails over and
  // starts a repair job.
  auto vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  tb.FailNode(tb.allocator().Find(*vm)->server);

  ASSERT_TRUE(RunUntil(tb, [&] {
    return AllReplicated(tb, id, 2) &&
           tb.client().PendingRecoveries() == 0;
  }));

  const auto* stats = tb.client().stats(id);
  EXPECT_GE(stats->repairs_started, 1u);
  EXPECT_EQ(stats->repairs_completed, stats->repairs_started);
  // Anti-affinity (replica never shares a node with its primary) plus
  // acked-bytes survival are swept by the invariant checker.
  EXPECT_GT(tb.invariant_checks(), 0u);
  EXPECT_TRUE(tb.invariant_violations().empty())
      << tb.invariant_violations()[0];
  EXPECT_TRUE(tb.CheckInvariantsNow().empty());
}

class RepairCapacityTest : public RepairTest {
 protected:
  /// A four-server cluster (app node + three) where every server fits
  /// exactly one cache VM (the cheapest menu type is 8 GiB). After a
  /// replicated cache takes two servers, fillers consume the rest, so
  /// repair allocation fails until something frees.
  static TestbedOptions TightOpts() {
    TestbedOptions o;
    o.pods = 1;
    o.racks_per_pod = 1;
    o.servers_per_rack = 4;
    o.memory_per_server = 8 * kGiB;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  /// Allocates filler VMs until the cluster is out of memory; returns
  /// them so tests can free a specific one.
  static std::vector<cluster::Vm> FillCluster(Testbed& tb) {
    std::vector<cluster::Vm> fillers;
    for (;;) {
      auto vm = tb.allocator().Allocate(1, 8 * kGiB, false);
      if (!vm.ok()) break;
      fillers.push_back(*vm);
    }
    return fillers;
  }
};

TEST_F(RepairCapacityTest, ParksOnCapacityWaitlistAndResumesAfterFree) {
  Testbed tb(TightOpts());
  auto id_or =
      tb.client().CreateReplicated(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;
  const std::vector<cluster::Vm> fillers = FillCluster(tb);
  ASSERT_FALSE(fillers.empty());

  auto vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  const net::ServerId primary_node = tb.allocator().Find(*vm)->server;
  tb.FailNode(primary_node);

  // The repair cannot place a replica anywhere: the old primary's
  // server is dead, the new primary's node is excluded by
  // anti-affinity, and the fillers hold everything else. It must park
  // (bounded backoff + capacity waitlist), not fail or spin.
  tb.sim().RunFor(300 * kMicrosecond);
  EXPECT_FALSE(AllReplicated(tb, id, 1));
  EXPECT_EQ(tb.client().PendingRecoveries(), 1u);
  EXPECT_EQ(tb.client().stats(id)->repairs_started, 1u);
  EXPECT_EQ(tb.client().stats(id)->repairs_completed, 0u);

  // Free a filler on a non-app, non-primary node: the capacity waiter
  // fires and the parked repair completes there.
  const cluster::Vm* victim = nullptr;
  auto vm_after = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm_after.ok());
  const net::ServerId new_primary = tb.allocator().Find(*vm_after)->server;
  for (const auto& f : fillers) {
    if (f.server != tb.app_node() && f.server != new_primary) victim = &f;
  }
  ASSERT_NE(victim, nullptr);
  tb.allocator().Free(victim->id);

  ASSERT_TRUE(RunUntil(tb, [&] {
    return AllReplicated(tb, id, 1) &&
           tb.client().PendingRecoveries() == 0;
  }));
  EXPECT_EQ(tb.client().stats(id)->repairs_completed, 1u);
  EXPECT_TRUE(tb.CheckInvariantsNow().empty());
}

TEST_F(RepairCapacityTest, GivesUpAfterBoundedAttemptsWithoutLeaking) {
  Testbed tb(TightOpts());
  auto id_or =
      tb.client().CreateReplicated(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;
  const std::vector<cluster::Vm> fillers = FillCluster(tb);
  const uint64_t free_before = tb.allocator().UnallocatedMemory();

  auto vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  const cluster::Vm primary = *tb.allocator().Find(*vm);
  tb.FailNode(primary.server);

  // Nothing ever frees: the repair retries with doubling backoff and
  // gives up after repair_max_attempts, leaving the region degraded
  // but the cache usable and the recovery pipeline drained.
  ASSERT_TRUE(
      RunUntil(tb, [&] { return tb.client().PendingRecoveries() == 0; }));
  EXPECT_FALSE(AllReplicated(tb, id, 1));
  EXPECT_EQ(tb.client().stats(id)->repairs_started, 1u);
  EXPECT_EQ(tb.client().stats(id)->repairs_completed, 0u);
  // Failed attempts must not leak target VMs (the dead primary's
  // memory came back when its server freed it, nothing else moved).
  EXPECT_EQ(tb.allocator().UnallocatedMemory(),
            free_before + primary.memory_bytes);

  // Late capacity does not resurrect the abandoned job (its waiters
  // are one-shot and already spent) — and nothing crashes.
  tb.allocator().Free(fillers.back().id);
  tb.sim().RunFor(5 * kMillisecond);
  EXPECT_EQ(tb.client().PendingRecoveries(), 0u);

  // The degraded cache still serves traffic.
  const char msg[] = "degraded but alive";
  char out[32] = {};
  bool done = false;
  ASSERT_TRUE(tb.client()
                  .Write(id, 0, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           done = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return done; }));
  done = false;
  ASSERT_TRUE(tb.client()
                  .Read(id, 0, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          done = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return done; }));
  EXPECT_STREQ(out, msg);
}

}  // namespace
}  // namespace redy
