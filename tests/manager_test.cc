#include <gtest/gtest.h>

#include "redy/cache_manager.h"
#include "redy/perf_model.h"
#include "redy/slo_search.h"
#include "redy/testbed.h"

namespace redy {
namespace {

PerfPoint AnalyticPerf(const RdmaConfig& cfg) {
  const double conn_tput = 0.22 * cfg.q * (1 + 0.8 * (cfg.b - 1));
  const double server_cap = cfg.s == 0 ? 1e9 : cfg.s * 38.0;
  const double tput = std::min(conn_tput * cfg.c, server_cap);
  const double lat = 4.0 + 0.15 * (cfg.b - 1) + 1.2 * (cfg.q - 1) +
                     0.002 * cfg.b * cfg.q * cfg.c;
  return PerfPoint{lat, tput};
}

PerfModel BuildModel(uint32_t record_bytes) {
  ConfigBounds b;
  b.max_client_threads = 8;
  b.record_bytes = record_bytes;
  b.max_queue_depth = 8;
  OfflineModeler::Options opt;
  opt.early_termination = false;
  return OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);
}

class ManagerTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 4 * kMiB;
    return o;
  }

  ManagerTest() : tb_(Opts()) {
    tb_.manager().SetModel(8, net::FabricParams::kIntraRackHops,
                           BuildModel(8));
  }

  Testbed tb_;
};

TEST_F(ManagerTest, SearchConfigSatisfiesSlo) {
  Slo slo{100.0, 20.0, 8};
  auto cfg = tb_.manager().SearchConfig(slo, 1);
  ASSERT_TRUE(cfg.ok()) << cfg.status().ToString();
  const auto p = AnalyticPerf(*cfg);
  EXPECT_LE(p.latency_us, slo.max_latency_us);
  EXPECT_GE(p.throughput_mops, slo.min_throughput_mops);
}

TEST_F(ManagerTest, SearchConfigWithoutModelFails) {
  Slo slo{100.0, 20.0, 64};  // no model registered for 64B records
  EXPECT_TRUE(tb_.manager().SearchConfig(slo, 1).status().IsNotFound());
}

TEST_F(ManagerTest, AllocateEndToEnd) {
  Slo slo{100.0, 20.0, 8};
  auto alloc = tb_.manager().Allocate(8 * kMiB, slo, kDurationInfinite,
                                      tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  EXPECT_EQ(alloc->regions.size(), 2u);
  EXPECT_GT(alloc->price_per_hour, 0.0);
  EXPECT_FALSE(alloc->spot);
  for (const auto& r : alloc->regions) {
    EXPECT_NE(tb_.manager().ServerFor(r.vm_id), nullptr);
  }
  tb_.manager().Deallocate(*alloc);
  EXPECT_EQ(tb_.allocator().UnallocatedMemory(),
            tb_.allocator().TotalMemory());
}

TEST_F(ManagerTest, FiniteDurationUsesSpot) {
  Slo slo{100.0, 20.0, 8};
  auto alloc = tb_.manager().Allocate(4 * kMiB, slo, 10 * kMinute,
                                      tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc->spot);
  const auto* vm = tb_.allocator().Find(alloc->regions[0].vm_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->spot);
  tb_.manager().Deallocate(*alloc);
}

TEST_F(ManagerTest, OneSidedConfigPrefersStrandedMemory) {
  // Strand a server: fill all its cores with a workload VM, leaving
  // memory behind. Place it away from the app node, since caches are
  // never hosted on the client's own server.
  auto filler =
      tb_.allocator().Allocate(64, 8 * kGiB, false, tb_.app_node());
  ASSERT_TRUE(filler.ok());
  ASSERT_TRUE(tb_.allocator().server(filler->server).stranded());

  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8, false, tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  const auto* vm = tb_.allocator().Find(alloc->regions[0].vm_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_TRUE(vm->memory_only);
  EXPECT_EQ(vm->server, filler->server);
  // Stranded memory is essentially free.
  EXPECT_LT(alloc->price_per_hour, 0.01);
  tb_.manager().Deallocate(*alloc);
}

TEST_F(ManagerTest, TwoSidedConfigNeedsCoresFromMenu) {
  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{2, 2, 16, 4}, 8, false, tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  const auto* vm = tb_.allocator().Find(alloc->regions[0].vm_id);
  ASSERT_NE(vm, nullptr);
  EXPECT_FALSE(vm->memory_only);
  EXPECT_GE(vm->cores, 2u);
  tb_.manager().Deallocate(*alloc);
}

TEST_F(ManagerTest, AllocateFailsAtomicallyWhenTooLarge) {
  // A tiny cluster so the over-ask fails after placing a few VMs
  // (regions are real memory; keep the transient footprint small).
  TestbedOptions o = Opts();
  o.memory_per_server = 16 * kMiB;
  Testbed tb(o);
  const uint64_t before = tb.allocator().UnallocatedMemory();
  // More memory than the whole cluster holds.
  auto alloc = tb.manager().AllocateWithConfig(
      2 * kGiB, RdmaConfig{1, 0, 1, 4}, 8, false, tb.app_node(), 4 * kMiB);
  EXPECT_FALSE(alloc.ok());
  // No side effects (Section 3.2: "the request has no effect").
  EXPECT_EQ(tb.allocator().UnallocatedMemory(), before);
}

TEST_F(ManagerTest, ImpossibleSloFailsAllocate) {
  Slo slo{0.5, 10000.0, 8};
  auto alloc = tb_.manager().Allocate(4 * kMiB, slo, kDurationInfinite,
                                      tb_.app_node(), 4 * kMiB);
  EXPECT_FALSE(alloc.ok());
}

TEST_F(ManagerTest, ReleaseVmIsIdempotent) {
  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8, false, tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  const cluster::VmId vm = alloc->regions[0].vm_id;
  tb_.manager().ReleaseVm(vm);
  EXPECT_EQ(tb_.manager().ServerFor(vm), nullptr);
  // Double release and a Deallocate covering the same VM are no-ops.
  tb_.manager().ReleaseVm(vm);
  tb_.manager().Deallocate(*alloc);
  EXPECT_EQ(tb_.allocator().UnallocatedMemory(),
            tb_.allocator().TotalMemory());
}

TEST_F(ManagerTest, ReleaseVmAfterReclaimDeadlineIsSafe) {
  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8, /*spot=*/true, tb_.app_node(),
      4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  const cluster::VmId vm = alloc->regions[0].vm_id;
  ASSERT_TRUE(tb_.allocator().Reclaim(vm).ok());
  tb_.sim().RunFor(31 * kSecond);  // past the notice: force-freed

  // The allocator force-freed the VM, but the manager's agent entry
  // survives (raw RegionPlacement::server pointers must stay valid
  // until the client releases); it is just shut down.
  EXPECT_EQ(tb_.allocator().Find(vm), nullptr);
  ASSERT_NE(tb_.manager().ServerFor(vm), nullptr);
  EXPECT_FALSE(tb_.manager().ServerFor(vm)->alive());

  // Releasing after the force-free is the normal supervisor epilogue:
  // it drops the entry and must not double-free anything.
  tb_.manager().ReleaseVm(vm);
  EXPECT_EQ(tb_.manager().ServerFor(vm), nullptr);
  tb_.manager().ReleaseVm(vm);
  EXPECT_EQ(tb_.allocator().UnallocatedMemory(),
            tb_.allocator().TotalMemory());
}

TEST_F(ManagerTest, ReleaseVmAfterServerFailureIsSafe) {
  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8, false, tb_.app_node(), 4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  const cluster::VmId vm = alloc->regions[0].vm_id;
  tb_.FailNode(tb_.allocator().Find(vm)->server);
  tb_.sim().RunFor(1);  // let the deadline-now shutdown event run

  tb_.manager().ReleaseVm(vm);
  EXPECT_EQ(tb_.manager().ServerFor(vm), nullptr);
  tb_.manager().Deallocate(*alloc);  // repeat via the bulk path
  EXPECT_EQ(tb_.allocator().UnallocatedMemory(),
            tb_.allocator().TotalMemory());
}

TEST_F(ManagerTest, ReclaimNoticePropagatesToLossHandler) {
  auto alloc = tb_.manager().AllocateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8, /*spot=*/true, tb_.app_node(),
      4 * kMiB);
  ASSERT_TRUE(alloc.ok());
  cluster::VmId lost = cluster::kInvalidVm;
  sim::SimTime deadline = 0;
  tb_.manager().SetVmLossHandler(
      [&](cluster::VmId vm, sim::SimTime d) {
        lost = vm;
        deadline = d;
      });
  ASSERT_TRUE(tb_.allocator().Reclaim(alloc->regions[0].vm_id).ok());
  EXPECT_EQ(lost, alloc->regions[0].vm_id);
  EXPECT_GE(deadline, tb_.sim().Now() + 29 * kSecond);
}

}  // namespace
}  // namespace redy
