#include <gtest/gtest.h>

#include "redy/measurement.h"
#include "redy/testbed.h"

namespace redy {
namespace {

TEST(TestbedTest, WiresComponentsTogether) {
  TestbedOptions o;
  o.pods = 1;
  o.racks_per_pod = 2;
  o.servers_per_rack = 3;
  o.cores_per_server = 8;
  o.memory_per_server = 16 * kGiB;
  Testbed tb(o);
  EXPECT_EQ(tb.fabric().topology().num_servers(), 6);
  EXPECT_EQ(tb.allocator().num_servers(), 6);
  EXPECT_EQ(tb.allocator().server(0).cores_total, 8u);
  EXPECT_EQ(tb.allocator().TotalMemory(), 6ull * 16 * kGiB);
  EXPECT_EQ(tb.client().node(), o.app_node);
}

TEST(TestbedTest, FailNodeKillsNicAndVms) {
  Testbed tb((TestbedOptions()));
  auto vm = tb.allocator().Allocate(2, kGiB, false, net::ServerId{0});
  ASSERT_TRUE(vm.ok());
  const net::ServerId node = vm->server;
  tb.FailNode(node);
  EXPECT_TRUE(tb.fabric().NicAt(node)->failed());
  EXPECT_EQ(tb.allocator().Find(vm->id), nullptr);
  // The failed server is never chosen again.
  for (int i = 0; i < 10; i++) {
    auto v = tb.allocator().Allocate(1, kGiB, false, net::ServerId{0});
    ASSERT_TRUE(v.ok());
    EXPECT_NE(v->server, node);
  }
}

TEST(TestbedTest, MeasurementIsDeterministic) {
  auto run = [] {
    Testbed tb((TestbedOptions()));
    MeasurementApp app(&tb);
    MeasurementApp::WorkloadOptions w;
    w.cache_bytes = 2 * kMiB;
    w.record_bytes = 8;
    w.warmup = 50 * kMicrosecond;
    w.window = 200 * kMicrosecond;
    auto m = app.Measure(RdmaConfig{2, 1, 4, 4}, w);
    EXPECT_TRUE(m.ok());
    return m->ops;
  };
  const uint64_t a = run();
  EXPECT_GT(a, 100u);
  EXPECT_EQ(a, run());
}

TEST(TestbedTest, CostModelPropagatesToClient) {
  TestbedOptions o;
  o.costs.lockfree_rings = false;
  o.costs.lock_cost_ns = 1234;
  Testbed tb(o);
  EXPECT_EQ(tb.client().ApiCallCostNs(),
            o.costs.api_call_ns + 1234);
}

}  // namespace
}  // namespace redy
