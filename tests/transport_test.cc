// Tests of the real-transport backend (DESIGN.md §13): the wall-clock
// driver's park/wake arm, and a slice of the rdma_test.cc /
// redy_cache_test.cc surface parameterized over BOTH backends — the
// deterministic simulator and the socket-loopback transport — so the
// verbs contract (data movement, in-order completions, queue depth,
// epoch fencing, error flushes) is pinned to be backend-independent.
// Everything here is bounded to a few wall-clock seconds: this file is
// the tier-1 loopback smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "rdma/nic.h"
#include "rdma/queue_pair.h"
#include "redy/testbed.h"
#include "sim/simulation.h"
#include "transport/loopback.h"
#include "transport/socket_fabric.h"
#include "transport/wall_clock.h"

namespace redy {
namespace {

using rdma::MemoryRegion;
using rdma::Nic;
using rdma::QueuePair;
using rdma::WorkCompletion;
using transport::LoopbackRig;
using transport::LoopbackRigOptions;
using transport::SocketFabric;
using transport::WallClockDriver;

bool SpinUntil(const std::function<bool()>& pred, uint64_t timeout_ms) {
  const uint64_t deadline =
      WallClockDriver::MonotonicNs() + timeout_ms * 1'000'000ull;
  while (!pred()) {
    if (WallClockDriver::MonotonicNs() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Satellite: the park/wake machinery has a real futex arm.

TEST(WallClockDriverTest, IdleLoopParksAndPostWakesIt) {
  sim::Simulation sim;
  WallClockDriver driver(&sim);
  driver.Start();
  // With an empty event queue the loop must park (block in epoll_wait),
  // not spin.
  ASSERT_TRUE(SpinUntil([&] { return driver.idle_blocks() > 0; }, 2'000))
      << "idle driver never parked";
  const uint64_t wakeups_before = driver.wakeups();
  std::atomic<bool> ran{false};
  driver.Post([&] { ran.store(true, std::memory_order_release); });
  ASSERT_TRUE(SpinUntil([&] { return ran.load(std::memory_order_acquire); },
                        2'000))
      << "posted work did not run";
  // The post found the loop parked (or about to park) and woke it
  // through the eventfd doorbell.
  EXPECT_TRUE(SpinUntil([&] { return driver.wakeups() > wakeups_before; },
                        2'000));
  driver.Stop();
}

TEST(WallClockDriverTest, TimersFireAgainstTheWallClock) {
  sim::Simulation sim;
  WallClockDriver driver(&sim);
  std::atomic<int> fired{0};
  driver.Start();
  driver.Call([&] {
    sim.After(2 * kMillisecond, [&] { fired.fetch_add(1); });
  });
  ASSERT_TRUE(SpinUntil([&] { return fired.load() >= 1; }, 2'000));
  driver.Stop();
}

// ---------------------------------------------------------------------------
// Backend-parameterized verbs tests (satellite: the same contract slice
// runs on the simulator and over real loopback sockets).

enum class Backend { kSim, kSocket };

/// Uniform driver for both worlds. Run() executes a functor in the
/// backend's single-threaded context (inline for the simulator, on the
/// loop thread for the socket backend); Await() pumps the backend until
/// the predicate holds.
class BackendHarness {
 public:
  virtual ~BackendHarness() = default;
  virtual rdma::Fabric& fabric() = 0;
  virtual void Run(const std::function<void()>& fn) = 0;
  virtual bool Await(const std::function<bool()>& pred) = 0;
};

class SimHarness : public BackendHarness {
 public:
  SimHarness() : fabric_(&sim_, net::Topology(2, 2, 4)) {}
  rdma::Fabric& fabric() override { return fabric_; }
  void Run(const std::function<void()>& fn) override { fn(); }
  bool Await(const std::function<bool()>& pred) override {
    sim_.Run();
    return pred();
  }

 private:
  sim::Simulation sim_;
  rdma::Fabric fabric_;
};

class SocketHarness : public BackendHarness {
 public:
  SocketHarness() : driver_(&sim_) {
    driver_.Start();
    driver_.Call([&] {
      SocketFabric::Options opts;
      opts.workers = 2;
      fabric_ = std::make_unique<SocketFabric>(
          &sim_, &driver_, net::Topology(2, 2, 4), net::FabricParams{}, opts);
    });
  }
  ~SocketHarness() override {
    fabric_->ShutdownTransport();
    driver_.Stop();
    fabric_.reset();
  }
  rdma::Fabric& fabric() override { return *fabric_; }
  void Run(const std::function<void()>& fn) override { driver_.Call(fn); }
  bool Await(const std::function<bool()>& pred) override {
    const uint64_t deadline =
        WallClockDriver::MonotonicNs() + 10ull * 1'000'000'000;
    while (true) {
      if (driver_.Call(pred)) return true;
      if (WallClockDriver::MonotonicNs() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  WallClockDriver& driver() { return driver_; }

 private:
  sim::Simulation sim_;
  WallClockDriver driver_;
  std::unique_ptr<SocketFabric> fabric_;
};

class BackendRdmaTest : public ::testing::TestWithParam<Backend> {
 protected:
  BackendRdmaTest() {
    if (GetParam() == Backend::kSim) {
      harness_ = std::make_unique<SimHarness>();
    } else {
      harness_ = std::make_unique<SocketHarness>();
    }
    harness_->Run([&] {
      client_nic_ = harness_->fabric().NicAt(0);
      server_nic_ = harness_->fabric().NicAt(1);
      cqp_ = client_nic_->CreateQueuePair(16);
      sqp_ = server_nic_->CreateQueuePair(16);
      connect_ok_ = cqp_->Connect(sqp_).ok();
      local_ = client_nic_->RegisterMemory(64 * kKiB);
      remote_ = server_nic_->RegisterMemory(64 * kKiB);
    });
    EXPECT_TRUE(connect_ok_);
  }

  /// Pumps the backend until `n` completions surfaced on cqp_'s send CQ.
  std::vector<WorkCompletion> DrainN(size_t n) {
    std::vector<WorkCompletion> out;
    harness_->Await([&] {
      WorkCompletion wc;
      while (cqp_->send_cq().Poll(&wc, 1) == 1) out.push_back(wc);
      return out.size() >= n;
    });
    return out;
  }

  std::unique_ptr<BackendHarness> harness_;
  Nic* client_nic_ = nullptr;
  Nic* server_nic_ = nullptr;
  QueuePair* cqp_ = nullptr;
  QueuePair* sqp_ = nullptr;
  MemoryRegion* local_ = nullptr;
  MemoryRegion* remote_ = nullptr;
  bool connect_ok_ = false;
};

TEST_P(BackendRdmaTest, OneSidedWriteMovesBytes) {
  const char msg[] = "hello remote memory";
  std::memcpy(local_->data() + 100, msg, sizeof(msg));
  bool posted = false;
  harness_->Run([&] {
    posted = cqp_->PostWrite(7, local_, 100, remote_->remote_key(), 200,
                             sizeof(msg))
                 .ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 7u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(wcs[0].opcode, rdma::Opcode::kWrite);
  EXPECT_EQ(std::memcmp(remote_->data() + 200, msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, OneSidedReadMovesBytes) {
  const char msg[] = "data on the server";
  std::memcpy(remote_->data() + 64, msg, sizeof(msg));
  bool posted = false;
  harness_->Run([&] {
    posted = cqp_->PostRead(9, local_, 0, remote_->remote_key(), 64,
                            sizeof(msg))
                 .ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, CompletionsArriveInPostOrder) {
  harness_->Run([&] {
    EXPECT_TRUE(
        cqp_->PostWrite(1, local_, 0, remote_->remote_key(), 0, 16 * kKiB)
            .ok());
    EXPECT_TRUE(
        cqp_->PostWrite(2, local_, 0, remote_->remote_key(), 0, 8).ok());
    EXPECT_TRUE(
        cqp_->PostRead(3, local_, 0, remote_->remote_key(), 0, 8 * kKiB)
            .ok());
    EXPECT_TRUE(
        cqp_->PostWrite(4, local_, 0, remote_->remote_key(), 0, 8).ok());
  });
  auto wcs = DrainN(4);
  ASSERT_EQ(wcs.size(), 4u);
  for (size_t i = 0; i < wcs.size(); i++) EXPECT_EQ(wcs[i].wr_id, i + 1);
}

TEST_P(BackendRdmaTest, QueueDepthIsEnforced) {
  int accepted = 0;
  QueuePair* qp4 = nullptr;
  harness_->Run([&] {
    qp4 = client_nic_->CreateQueuePair(4);
    QueuePair* sqp4 = server_nic_->CreateQueuePair(4);
    EXPECT_TRUE(qp4->Connect(sqp4).ok());
    for (int i = 0; i < 10; i++) {
      if (qp4->PostWrite(i, local_, 0, remote_->remote_key(), 0, 8).ok()) {
        accepted++;
      }
    }
  });
  EXPECT_EQ(accepted, 4);
  std::vector<WorkCompletion> out;
  ASSERT_TRUE(harness_->Await([&] {
    WorkCompletion wc;
    while (qp4->send_cq().Poll(&wc, 1) == 1) out.push_back(wc);
    return out.size() >= 4;
  }));
  bool reposted = false;
  harness_->Run([&] {
    reposted =
        qp4->PostWrite(99, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  EXPECT_TRUE(reposted);
}

TEST_P(BackendRdmaTest, StaleEpochWriteIsFencedFreshKeySucceeds) {
  const rdma::RemoteKey stale = remote_->remote_key();
  std::memset(remote_->data(), 0, 16);
  std::memset(local_->data(), 0x5A, 16);
  bool posted = false;
  harness_->Run([&] {
    remote_->RevokeEpoch();
    posted = cqp_->PostWrite(1, local_, 0, stale, 0, 16).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  for (int i = 0; i < 16; i++) {
    ASSERT_EQ(remote_->data()[i], 0) << "fenced write landed at byte " << i;
  }

  // A key minted after the revocation carries the new epoch and works.
  harness_->Run([&] {
    posted = cqp_->PostWrite(2, local_, 0, remote_->remote_key(), 0, 16).ok();
  });
  ASSERT_TRUE(posted);
  wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(remote_->data()[0], 0x5A);
}

TEST_P(BackendRdmaTest, ReadsSurviveEpochRevocation) {
  const char msg[] = "still readable";
  std::memcpy(remote_->data(), msg, sizeof(msg));
  const rdma::RemoteKey stale = remote_->remote_key();
  bool posted = false;
  harness_->Run([&] {
    remote_->RevokeEpoch();
    posted = cqp_->PostRead(1, local_, 0, stale, 0, sizeof(msg)).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, RemoteOutOfBoundsAborts) {
  MemoryRegion* tiny = nullptr;
  bool posted = false;
  harness_->Run([&] {
    tiny = server_nic_->RegisterMemory(128);
    posted = cqp_->PostWrite(1, local_, 0, tiny->remote_key(), 120, 64).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kAborted);
}

TEST_P(BackendRdmaTest, SendRecvDeliversToPostedBuffer) {
  const char msg[] = "rpc payload";
  std::memcpy(local_->data(), msg, sizeof(msg));
  harness_->Run([&] {
    EXPECT_TRUE(sqp_->PostRecv(42, remote_, 0, 4096).ok());
    EXPECT_TRUE(cqp_->PostSend(7, local_, 0, sizeof(msg)).ok());
  });
  WorkCompletion rwc;
  bool got = false;
  ASSERT_TRUE(harness_->Await([&] {
    if (!got && sqp_->recv_cq().Poll(&rwc, 1) == 1) got = true;
    return got;
  }));
  EXPECT_EQ(rwc.wr_id, 42u);
  EXPECT_EQ(rwc.status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(remote_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, NicFailureFlushesInFlightOps) {
  harness_->Run([&] {
    for (int i = 0; i < 4; i++) {
      EXPECT_TRUE(
          cqp_->PostWrite(i, local_, 0, remote_->remote_key(), 0, 8).ok());
    }
    server_nic_->Fail();
  });
  auto wcs = DrainN(4);
  ASSERT_EQ(wcs.size(), 4u);
  for (const auto& wc : wcs) {
    EXPECT_EQ(wc.status, StatusCode::kUnavailable);
  }
  bool reposted = true;
  harness_->Run([&] {
    reposted =
        cqp_->PostWrite(9, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  EXPECT_FALSE(reposted);
}

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "SocketLoopback";
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendRdmaTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         BackendName);

// ---------------------------------------------------------------------------
// Full-stack slice: the unmodified CacheClient/CacheServer stack runs
// the same round trips on both backends.

class BackendCacheTest : public ::testing::TestWithParam<Backend> {
 protected:
  BackendCacheTest() {
    if (GetParam() == Backend::kSim) {
      TestbedOptions o;
      o.pods = 2;
      o.racks_per_pod = 2;
      o.servers_per_rack = 4;
      o.client.region_bytes = 4 * kMiB;
      tb_ = std::make_unique<Testbed>(o);
    } else {
      LoopbackRigOptions o;
      o.servers_per_rack = 4;
      o.client.region_bytes = 4 * kMiB;
      rig_ = std::make_unique<LoopbackRig>(o);
    }
  }

  CacheClient& client() { return tb_ ? tb_->client() : rig_->client(); }

  void Run(const std::function<void()>& fn) {
    if (tb_) {
      fn();
    } else {
      rig_->Call(fn);
    }
  }

  bool Await(const std::function<bool()>& pred) {
    if (tb_) {
      for (int i = 0; i < 2'000'000; i++) {
        if (pred()) return true;
        if (!tb_->sim().Step()) return pred();
      }
      return pred();
    }
    return rig_->AwaitTrue(pred);
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<LoopbackRig> rig_;
};

TEST_P(BackendCacheTest, OneSidedWriteReadRoundTrip) {
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 4},
                                      /*record_bytes=*/64);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "stranded memory as a cache";
  std::atomic<bool> wrote{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .Write(id, 4096, msg, sizeof(msg),
                           [&](Status st) {
                             EXPECT_TRUE(st.ok()) << st.ToString();
                             wrote.store(true, std::memory_order_release);
                           })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return wrote.load(std::memory_order_acquire); }));

  char out[64] = {};
  std::atomic<bool> read{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .Read(id, 4096, out, sizeof(msg),
                          [&](Status st) {
                            EXPECT_TRUE(st.ok()) << st.ToString();
                            read.store(true, std::memory_order_release);
                          })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return read.load(std::memory_order_acquire); }));
  EXPECT_STREQ(out, msg);
  Run([&] { EXPECT_TRUE(client().Delete(id).ok()); });
}

TEST_P(BackendCacheTest, BatchedTwoSidedRoundTrip) {
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{2, 1, 8, 4},
                                      /*record_bytes=*/32);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  constexpr int kOps = 32;
  std::vector<std::vector<uint8_t>> payloads(kOps);
  std::atomic<int> writes_done{0};
  Run([&] {
    for (int i = 0; i < kOps; i++) {
      payloads[i].assign(32, static_cast<uint8_t>(i + 1));
      EXPECT_TRUE(client()
                      .Write(id, i * 32, payloads[i].data(), 32,
                             [&](Status st) {
                               EXPECT_TRUE(st.ok()) << st.ToString();
                               writes_done.fetch_add(1);
                             },
                             /*app_thread=*/i % 2)
                      .ok());
    }
  });
  ASSERT_TRUE(Await([&] { return writes_done.load() == kOps; }));

  std::vector<std::vector<uint8_t>> got(kOps, std::vector<uint8_t>(32));
  std::atomic<int> reads_done{0};
  Run([&] {
    for (int i = 0; i < kOps; i++) {
      EXPECT_TRUE(client()
                      .Read(id, i * 32, got[i].data(), 32,
                            [&](Status st) {
                              EXPECT_TRUE(st.ok()) << st.ToString();
                              reads_done.fetch_add(1);
                            },
                            /*app_thread=*/i % 2)
                      .ok());
    }
  });
  ASSERT_TRUE(Await([&] { return reads_done.load() == kOps; }));
  for (int i = 0; i < kOps; i++) {
    EXPECT_EQ(got[i], payloads[i]) << "record " << i;
  }
  Run([&] { EXPECT_TRUE(client().Delete(id).ok()); });
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendCacheTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         BackendName);

}  // namespace
}  // namespace redy
