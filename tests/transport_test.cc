// Tests of the real-transport backend (DESIGN.md §13): the wall-clock
// driver's park/wake arm, and a slice of the rdma_test.cc /
// redy_cache_test.cc surface parameterized over BOTH backends — the
// deterministic simulator and the socket-loopback transport — so the
// verbs contract (data movement, in-order completions, queue depth,
// epoch fencing, error flushes) is pinned to be backend-independent.
// Everything here is bounded to a few wall-clock seconds: this file is
// the tier-1 loopback smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "rdma/nic.h"
#include "rdma/queue_pair.h"
#include "redy/testbed.h"
#include "sim/simulation.h"
#include "transport/loopback.h"
#include "transport/socket_fabric.h"
#include "transport/wall_clock.h"

namespace redy {
namespace {

using rdma::MemoryRegion;
using rdma::Nic;
using rdma::QueuePair;
using rdma::WorkCompletion;
using transport::LoopbackRig;
using transport::LoopbackRigOptions;
using transport::SocketFabric;
using transport::WallClockDriver;

bool SpinUntil(const std::function<bool()>& pred, uint64_t timeout_ms) {
  const uint64_t deadline =
      WallClockDriver::MonotonicNs() + timeout_ms * 1'000'000ull;
  while (!pred()) {
    if (WallClockDriver::MonotonicNs() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Satellite: the park/wake machinery has a real futex arm.

TEST(WallClockDriverTest, IdleLoopParksAndPostWakesIt) {
  sim::Simulation sim;
  WallClockDriver driver(&sim);
  driver.Start();
  // With an empty event queue the loop must park (block in epoll_wait),
  // not spin.
  ASSERT_TRUE(SpinUntil([&] { return driver.idle_blocks() > 0; }, 2'000))
      << "idle driver never parked";
  const uint64_t wakeups_before = driver.wakeups();
  std::atomic<bool> ran{false};
  driver.Post([&] { ran.store(true, std::memory_order_release); });
  ASSERT_TRUE(SpinUntil([&] { return ran.load(std::memory_order_acquire); },
                        2'000))
      << "posted work did not run";
  // The post found the loop parked (or about to park) and woke it
  // through the eventfd doorbell.
  EXPECT_TRUE(SpinUntil([&] { return driver.wakeups() > wakeups_before; },
                        2'000));
  driver.Stop();
}

TEST(WallClockDriverTest, TimersFireAgainstTheWallClock) {
  sim::Simulation sim;
  WallClockDriver driver(&sim);
  std::atomic<int> fired{0};
  driver.Start();
  driver.Call([&] {
    sim.After(2 * kMillisecond, [&] { fired.fetch_add(1); });
  });
  ASSERT_TRUE(SpinUntil([&] { return fired.load() >= 1; }, 2'000));
  driver.Stop();
}

// ---------------------------------------------------------------------------
// Backend-parameterized verbs tests (satellite: the same contract slice
// runs on the simulator and over real loopback sockets).

enum class Backend { kSim, kSocket };

/// Uniform driver for both worlds. Run() executes a functor in the
/// backend's single-threaded context (inline for the simulator, on the
/// loop thread for the socket backend); Await() pumps the backend until
/// the predicate holds.
class BackendHarness {
 public:
  virtual ~BackendHarness() = default;
  virtual rdma::Fabric& fabric() = 0;
  virtual void Run(const std::function<void()>& fn) = 0;
  virtual bool Await(const std::function<bool()>& pred) = 0;
};

class SimHarness : public BackendHarness {
 public:
  SimHarness() : fabric_(&sim_, net::Topology(2, 2, 4)) {}
  rdma::Fabric& fabric() override { return fabric_; }
  void Run(const std::function<void()>& fn) override { fn(); }
  bool Await(const std::function<bool()>& pred) override {
    sim_.Run();
    return pred();
  }

 private:
  sim::Simulation sim_;
  rdma::Fabric fabric_;
};

class SocketHarness : public BackendHarness {
 public:
  SocketHarness() : driver_(&sim_) {
    driver_.Start();
    driver_.Call([&] {
      SocketFabric::Options opts;
      opts.workers = 2;
      fabric_ = std::make_unique<SocketFabric>(
          &sim_, &driver_, net::Topology(2, 2, 4), net::FabricParams{}, opts);
    });
  }
  ~SocketHarness() override {
    fabric_->ShutdownTransport();
    driver_.Stop();
    fabric_.reset();
  }
  rdma::Fabric& fabric() override { return *fabric_; }
  void Run(const std::function<void()>& fn) override { driver_.Call(fn); }
  bool Await(const std::function<bool()>& pred) override {
    const uint64_t deadline =
        WallClockDriver::MonotonicNs() + 10ull * 1'000'000'000;
    while (true) {
      if (driver_.Call(pred)) return true;
      if (WallClockDriver::MonotonicNs() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  WallClockDriver& driver() { return driver_; }

 private:
  sim::Simulation sim_;
  WallClockDriver driver_;
  std::unique_ptr<SocketFabric> fabric_;
};

class BackendRdmaTest : public ::testing::TestWithParam<Backend> {
 protected:
  BackendRdmaTest() {
    if (GetParam() == Backend::kSim) {
      harness_ = std::make_unique<SimHarness>();
    } else {
      harness_ = std::make_unique<SocketHarness>();
    }
    harness_->Run([&] {
      client_nic_ = harness_->fabric().NicAt(0);
      server_nic_ = harness_->fabric().NicAt(1);
      cqp_ = client_nic_->CreateQueuePair(16);
      sqp_ = server_nic_->CreateQueuePair(16);
      connect_ok_ = cqp_->Connect(sqp_).ok();
      local_ = client_nic_->RegisterMemory(64 * kKiB);
      remote_ = server_nic_->RegisterMemory(64 * kKiB);
    });
    EXPECT_TRUE(connect_ok_);
  }

  /// Pumps the backend until `n` completions surfaced on cqp_'s send CQ.
  std::vector<WorkCompletion> DrainN(size_t n) {
    std::vector<WorkCompletion> out;
    harness_->Await([&] {
      WorkCompletion wc;
      while (cqp_->send_cq().Poll(&wc, 1) == 1) out.push_back(wc);
      return out.size() >= n;
    });
    return out;
  }

  std::unique_ptr<BackendHarness> harness_;
  Nic* client_nic_ = nullptr;
  Nic* server_nic_ = nullptr;
  QueuePair* cqp_ = nullptr;
  QueuePair* sqp_ = nullptr;
  MemoryRegion* local_ = nullptr;
  MemoryRegion* remote_ = nullptr;
  bool connect_ok_ = false;
};

TEST_P(BackendRdmaTest, OneSidedWriteMovesBytes) {
  const char msg[] = "hello remote memory";
  std::memcpy(local_->data() + 100, msg, sizeof(msg));
  bool posted = false;
  harness_->Run([&] {
    posted = cqp_->PostWrite(7, local_, 100, remote_->remote_key(), 200,
                             sizeof(msg))
                 .ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 7u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(wcs[0].opcode, rdma::Opcode::kWrite);
  EXPECT_EQ(std::memcmp(remote_->data() + 200, msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, OneSidedReadMovesBytes) {
  const char msg[] = "data on the server";
  std::memcpy(remote_->data() + 64, msg, sizeof(msg));
  bool posted = false;
  harness_->Run([&] {
    posted = cqp_->PostRead(9, local_, 0, remote_->remote_key(), 64,
                            sizeof(msg))
                 .ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, CompletionsArriveInPostOrder) {
  harness_->Run([&] {
    EXPECT_TRUE(
        cqp_->PostWrite(1, local_, 0, remote_->remote_key(), 0, 16 * kKiB)
            .ok());
    EXPECT_TRUE(
        cqp_->PostWrite(2, local_, 0, remote_->remote_key(), 0, 8).ok());
    EXPECT_TRUE(
        cqp_->PostRead(3, local_, 0, remote_->remote_key(), 0, 8 * kKiB)
            .ok());
    EXPECT_TRUE(
        cqp_->PostWrite(4, local_, 0, remote_->remote_key(), 0, 8).ok());
  });
  auto wcs = DrainN(4);
  ASSERT_EQ(wcs.size(), 4u);
  for (size_t i = 0; i < wcs.size(); i++) EXPECT_EQ(wcs[i].wr_id, i + 1);
}

TEST_P(BackendRdmaTest, QueueDepthIsEnforced) {
  int accepted = 0;
  QueuePair* qp4 = nullptr;
  harness_->Run([&] {
    qp4 = client_nic_->CreateQueuePair(4);
    QueuePair* sqp4 = server_nic_->CreateQueuePair(4);
    EXPECT_TRUE(qp4->Connect(sqp4).ok());
    for (int i = 0; i < 10; i++) {
      if (qp4->PostWrite(i, local_, 0, remote_->remote_key(), 0, 8).ok()) {
        accepted++;
      }
    }
  });
  EXPECT_EQ(accepted, 4);
  std::vector<WorkCompletion> out;
  ASSERT_TRUE(harness_->Await([&] {
    WorkCompletion wc;
    while (qp4->send_cq().Poll(&wc, 1) == 1) out.push_back(wc);
    return out.size() >= 4;
  }));
  bool reposted = false;
  harness_->Run([&] {
    reposted =
        qp4->PostWrite(99, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  EXPECT_TRUE(reposted);
}

TEST_P(BackendRdmaTest, StaleEpochWriteIsFencedFreshKeySucceeds) {
  const rdma::RemoteKey stale = remote_->remote_key();
  std::memset(remote_->data(), 0, 16);
  std::memset(local_->data(), 0x5A, 16);
  bool posted = false;
  harness_->Run([&] {
    remote_->RevokeEpoch();
    posted = cqp_->PostWrite(1, local_, 0, stale, 0, 16).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  for (int i = 0; i < 16; i++) {
    ASSERT_EQ(remote_->data()[i], 0) << "fenced write landed at byte " << i;
  }

  // A key minted after the revocation carries the new epoch and works.
  harness_->Run([&] {
    posted = cqp_->PostWrite(2, local_, 0, remote_->remote_key(), 0, 16).ok();
  });
  ASSERT_TRUE(posted);
  wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(remote_->data()[0], 0x5A);
}

TEST_P(BackendRdmaTest, ReadsSurviveEpochRevocation) {
  const char msg[] = "still readable";
  std::memcpy(remote_->data(), msg, sizeof(msg));
  const rdma::RemoteKey stale = remote_->remote_key();
  bool posted = false;
  harness_->Run([&] {
    remote_->RevokeEpoch();
    posted = cqp_->PostRead(1, local_, 0, stale, 0, sizeof(msg)).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, RemoteOutOfBoundsAborts) {
  MemoryRegion* tiny = nullptr;
  bool posted = false;
  harness_->Run([&] {
    tiny = server_nic_->RegisterMemory(128);
    posted = cqp_->PostWrite(1, local_, 0, tiny->remote_key(), 120, 64).ok();
  });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kAborted);
}

TEST_P(BackendRdmaTest, SendRecvDeliversToPostedBuffer) {
  const char msg[] = "rpc payload";
  std::memcpy(local_->data(), msg, sizeof(msg));
  harness_->Run([&] {
    EXPECT_TRUE(sqp_->PostRecv(42, remote_, 0, 4096).ok());
    EXPECT_TRUE(cqp_->PostSend(7, local_, 0, sizeof(msg)).ok());
  });
  WorkCompletion rwc;
  bool got = false;
  ASSERT_TRUE(harness_->Await([&] {
    if (!got && sqp_->recv_cq().Poll(&rwc, 1) == 1) got = true;
    return got;
  }));
  EXPECT_EQ(rwc.wr_id, 42u);
  EXPECT_EQ(rwc.status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(remote_->data(), msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, NicFailureFlushesInFlightOps) {
  harness_->Run([&] {
    for (int i = 0; i < 4; i++) {
      EXPECT_TRUE(
          cqp_->PostWrite(i, local_, 0, remote_->remote_key(), 0, 8).ok());
    }
    server_nic_->Fail();
  });
  auto wcs = DrainN(4);
  ASSERT_EQ(wcs.size(), 4u);
  for (const auto& wc : wcs) {
    EXPECT_EQ(wc.status, StatusCode::kUnavailable);
  }
  bool reposted = true;
  harness_->Run([&] {
    reposted =
        cqp_->PostWrite(9, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  EXPECT_FALSE(reposted);
}

// ---------------------------------------------------------------------------
// NIC-offloaded op chains (DESIGN.md §15): one doorbell drives a
// dependent multi-op sequence on the responder NIC; the client sees a
// single completion (and thus a single poller wakeup) per chain.

TEST_P(BackendRdmaTest, ChainPointerChaseFollowsMaskedRemotePointer) {
  // Remote layout: a tagged pointer word at offset 256 whose upper bits
  // name the data offset (<< 4, low nibble is tag bits the mask strips).
  const char msg[] = "chased through the NIC";
  constexpr uint64_t kDataOff = 1024;
  std::memcpy(remote_->data() + kDataOff, msg, sizeof(msg));
  const uint64_t word = (kDataOff << 4) | 0x9;  // tag bits must be masked
  std::memcpy(remote_->data() + 256, &word, sizeof(word));

  rdma::ChainHop hops[2];
  hops[0].key = remote_->remote_key();
  hops[0].remote_offset = 256;
  hops[0].local_offset = 0;
  hops[0].len = 8;
  hops[1].key = remote_->remote_key();
  hops[1].remote_offset = 0;
  hops[1].local_offset = 64;
  hops[1].len = sizeof(msg);
  hops[1].addr_from_prev = true;
  hops[1].addr_mask = ~uint64_t{0xF};
  hops[1].addr_shift = 4;
  bool posted = false;
  harness_->Run(
      [&] { posted = cqp_->PostChain(11, local_, hops, 2).ok(); });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 11u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(wcs[0].opcode, rdma::Opcode::kChain);
  // Both read hops landed: the pointer word and the chased payload.
  EXPECT_EQ(wcs[0].byte_len, 8 + sizeof(msg));
  uint64_t landed_word = 0;
  std::memcpy(&landed_word, local_->data(), sizeof(landed_word));
  EXPECT_EQ(landed_word, word);
  EXPECT_EQ(std::memcmp(local_->data() + 64, msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, ChainWaitOnCqGatesDependentHop) {
  // A write hop followed by a read of the SAME remote range: the read
  // fires only after the write's completion (WAIT-on-CQ), so it must
  // observe the written bytes, not the old contents.
  std::memset(remote_->data(), 0, 64);
  const char msg[] = "write-then-read, in order";
  std::memcpy(local_->data(), msg, sizeof(msg));
  rdma::ChainHop hops[2];
  hops[0].key = remote_->remote_key();
  hops[0].remote_offset = 32;
  hops[0].local_offset = 0;
  hops[0].len = sizeof(msg);
  hops[0].is_write = true;
  hops[1].key = remote_->remote_key();
  hops[1].remote_offset = 32;
  hops[1].local_offset = 4096;
  hops[1].len = sizeof(msg);
  bool posted = false;
  harness_->Run(
      [&] { posted = cqp_->PostChain(12, local_, hops, 2).ok(); });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(wcs[0].byte_len, sizeof(msg));  // only the read hop lands
  EXPECT_EQ(std::memcmp(remote_->data() + 32, msg, sizeof(msg)), 0);
  EXPECT_EQ(std::memcmp(local_->data() + 4096, msg, sizeof(msg)), 0);
}

TEST_P(BackendRdmaTest, ChainAbortsOnStaleEpochMidChainWithZeroBytes) {
  // Hop 0 is fine; hop 1 carries a stale epoch; hop 2 would write. The
  // chain must deliver ONE poisoned completion with byte_len 0, land no
  // read bytes locally, and never execute the write hop.
  const uint64_t word = 512;
  std::memcpy(remote_->data(), &word, sizeof(word));
  std::memset(remote_->data() + 2048, 0, 16);
  std::memset(local_->data(), 0, 256);
  std::memset(local_->data() + 128, 0x7C, 16);  // write-hop source
  rdma::RemoteKey stale = remote_->remote_key();
  stale.epoch -= 1;  // models racing an epoch bump between hops
  rdma::ChainHop hops[3];
  hops[0].key = remote_->remote_key();
  hops[0].remote_offset = 0;
  hops[0].local_offset = 0;
  hops[0].len = 8;
  hops[1].key = stale;
  hops[1].remote_offset = 0;
  hops[1].local_offset = 64;
  hops[1].len = 64;
  hops[1].addr_from_prev = true;
  hops[2].key = remote_->remote_key();
  hops[2].remote_offset = 2048;
  hops[2].local_offset = 128;
  hops[2].len = 16;
  hops[2].is_write = true;
  bool posted = false;
  harness_->Run(
      [&] { posted = cqp_->PostChain(13, local_, hops, 3).ok(); });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 13u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  EXPECT_EQ(wcs[0].byte_len, 0u);
  // Zero bytes touched past the fence: no read payload landed locally
  // (not even hop 0's), and the tail write hop never ran.
  for (int i = 0; i < 128; i++) {
    ASSERT_EQ(local_->data()[i], 0) << "aborted chain landed byte " << i;
  }
  for (int i = 0; i < 16; i++) {
    ASSERT_EQ(remote_->data()[2048 + i], 0)
        << "tail write hop ran at byte " << i;
  }
  // The QP stays usable after an aborted chain.
  harness_->Run([&] {
    posted = cqp_->PostRead(14, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  ASSERT_TRUE(posted);
  wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
}

TEST_P(BackendRdmaTest, ChainDeliversExactlyOneCompletionAndOneNotify) {
  // Park-through-chain contract: a parked poller is woken once per
  // chain, not once per hop. Counted at the CQ notifier — the exact
  // doorbell sim::Poller parks against.
  auto notifies = std::make_shared<std::atomic<uint64_t>>(0);
  const uint64_t word = 256;
  std::memcpy(remote_->data(), &word, sizeof(word));
  harness_->Run([&] {
    std::atomic<uint64_t>* n = notifies.get();
    auto notify = [n] { n->fetch_add(1, std::memory_order_relaxed); };
    static_assert(sim::InlineFunction::fits_inline<decltype(notify)>());
    cqp_->send_cq().SetNotifier(notify);
  });

  // Baseline: two dependent plain reads ring the doorbell twice.
  bool posted = false;
  harness_->Run([&] {
    posted = cqp_->PostRead(1, local_, 0, remote_->remote_key(), 0, 8).ok();
  });
  ASSERT_TRUE(posted);
  ASSERT_EQ(DrainN(1).size(), 1u);
  harness_->Run([&] {
    posted =
        cqp_->PostRead(2, local_, 64, remote_->remote_key(), word, 32).ok();
  });
  ASSERT_TRUE(posted);
  ASSERT_EQ(DrainN(1).size(), 1u);
  EXPECT_EQ(notifies->load(), 2u);

  // The same dependent pair as one chain: one completion, one notify.
  notifies->store(0);
  rdma::ChainHop hops[2];
  hops[0].key = remote_->remote_key();
  hops[0].remote_offset = 0;
  hops[0].local_offset = 0;
  hops[0].len = 8;
  hops[1].key = remote_->remote_key();
  hops[1].remote_offset = 0;
  hops[1].local_offset = 64;
  hops[1].len = 32;
  hops[1].addr_from_prev = true;
  harness_->Run(
      [&] { posted = cqp_->PostChain(3, local_, hops, 2).ok(); });
  ASSERT_TRUE(posted);
  auto wcs = DrainN(1);
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(notifies->load(), 1u);
}

TEST_P(BackendRdmaTest, ChainRejectsMalformedDescriptors) {
  rdma::ChainHop hops[2];
  hops[0].key = remote_->remote_key();
  hops[0].len = 8;
  hops[1].key = remote_->remote_key();
  hops[1].len = 8;
  hops[1].addr_from_prev = true;
  harness_->Run([&] {
    // Zero hops / too many hops.
    EXPECT_FALSE(cqp_->PostChain(1, local_, hops, 0).ok());
    EXPECT_FALSE(
        cqp_->PostChain(2, local_, hops, rdma::kMaxChainHops + 1).ok());
    // A dependent hop 0 has no prior read to chase from.
    rdma::ChainHop bad[1];
    bad[0].key = remote_->remote_key();
    bad[0].len = 8;
    bad[0].addr_from_prev = true;
    EXPECT_FALSE(cqp_->PostChain(3, local_, bad, 1).ok());
    // A dependent hop after a write hop (no landed word to chase).
    rdma::ChainHop wr_then_dep[2] = {hops[0], hops[1]};
    wr_then_dep[0].is_write = true;
    EXPECT_FALSE(cqp_->PostChain(4, local_, wr_then_dep, 2).ok());
    // Local range outside the MR.
    rdma::ChainHop oob[1];
    oob[0].key = remote_->remote_key();
    oob[0].local_offset = 64 * kKiB;
    oob[0].len = 8;
    EXPECT_FALSE(cqp_->PostChain(5, local_, oob, 1).ok());
  });
}

std::string BackendName(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "SocketLoopback";
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendRdmaTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         BackendName);

// ---------------------------------------------------------------------------
// Full-stack slice: the unmodified CacheClient/CacheServer stack runs
// the same round trips on both backends.

class BackendCacheTest : public ::testing::TestWithParam<Backend> {
 protected:
  explicit BackendCacheTest(bool chain_reads = false) {
    if (GetParam() == Backend::kSim) {
      TestbedOptions o;
      o.pods = 2;
      o.racks_per_pod = 2;
      o.servers_per_rack = 4;
      o.client.region_bytes = 4 * kMiB;
      o.client.chain_reads = chain_reads;
      tb_ = std::make_unique<Testbed>(o);
    } else {
      LoopbackRigOptions o;
      o.servers_per_rack = 4;
      o.client.region_bytes = 4 * kMiB;
      o.client.chain_reads = chain_reads;
      rig_ = std::make_unique<LoopbackRig>(o);
    }
  }

  CacheClient& client() { return tb_ ? tb_->client() : rig_->client(); }

  void Run(const std::function<void()>& fn) {
    if (tb_) {
      fn();
    } else {
      rig_->Call(fn);
    }
  }

  bool Await(const std::function<bool()>& pred) {
    if (tb_) {
      for (int i = 0; i < 2'000'000; i++) {
        if (pred()) return true;
        if (!tb_->sim().Step()) return pred();
      }
      return pred();
    }
    return rig_->AwaitTrue(pred);
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<LoopbackRig> rig_;
};

TEST_P(BackendCacheTest, OneSidedWriteReadRoundTrip) {
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 4},
                                      /*record_bytes=*/64);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "stranded memory as a cache";
  std::atomic<bool> wrote{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .Write(id, 4096, msg, sizeof(msg),
                           [&](Status st) {
                             EXPECT_TRUE(st.ok()) << st.ToString();
                             wrote.store(true, std::memory_order_release);
                           })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return wrote.load(std::memory_order_acquire); }));

  char out[64] = {};
  std::atomic<bool> read{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .Read(id, 4096, out, sizeof(msg),
                          [&](Status st) {
                            EXPECT_TRUE(st.ok()) << st.ToString();
                            read.store(true, std::memory_order_release);
                          })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return read.load(std::memory_order_acquire); }));
  EXPECT_STREQ(out, msg);
  Run([&] { EXPECT_TRUE(client().Delete(id).ok()); });
}

TEST_P(BackendCacheTest, BatchedTwoSidedRoundTrip) {
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{2, 1, 8, 4},
                                      /*record_bytes=*/32);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  constexpr int kOps = 32;
  std::vector<std::vector<uint8_t>> payloads(kOps);
  std::atomic<int> writes_done{0};
  Run([&] {
    for (int i = 0; i < kOps; i++) {
      payloads[i].assign(32, static_cast<uint8_t>(i + 1));
      EXPECT_TRUE(client()
                      .Write(id, i * 32, payloads[i].data(), 32,
                             [&](Status st) {
                               EXPECT_TRUE(st.ok()) << st.ToString();
                               writes_done.fetch_add(1);
                             },
                             /*app_thread=*/i % 2)
                      .ok());
    }
  });
  ASSERT_TRUE(Await([&] { return writes_done.load() == kOps; }));

  std::vector<std::vector<uint8_t>> got(kOps, std::vector<uint8_t>(32));
  std::atomic<int> reads_done{0};
  Run([&] {
    for (int i = 0; i < kOps; i++) {
      EXPECT_TRUE(client()
                      .Read(id, i * 32, got[i].data(), 32,
                            [&](Status st) {
                              EXPECT_TRUE(st.ok()) << st.ToString();
                              reads_done.fetch_add(1);
                            },
                            /*app_thread=*/i % 2)
                      .ok());
    }
  });
  ASSERT_TRUE(Await([&] { return reads_done.load() == kOps; }));
  for (int i = 0; i < kOps; i++) {
    EXPECT_EQ(got[i], payloads[i]) << "record " << i;
  }
  Run([&] { EXPECT_TRUE(client().Delete(id).ok()); });
}

TEST_P(BackendCacheTest, IndirectReadFallbackChasesHopByHop) {
  // chain_reads is off in this fixture: ReadIndirect decomposes into
  // two dependent one-sided round trips (the chain_bench baseline).
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 4},
                                      /*record_bytes=*/64);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "pointer-chased record";
  const uint64_t ptr_word = 4096;  // region-relative offset of the data
  std::atomic<int> writes_done{0};
  Run([&] {
    auto wrote = [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      writes_done.fetch_add(1);
    };
    EXPECT_TRUE(client().Write(id, 4096, msg, sizeof(msg), wrote).ok());
    EXPECT_TRUE(
        client().Write(id, 8192, &ptr_word, sizeof(ptr_word), wrote).ok());
  });
  ASSERT_TRUE(Await([&] { return writes_done.load() == 2; }));

  char out[64] = {};
  std::atomic<bool> read{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .ReadIndirect(id, 8192, out, sizeof(msg),
                                  [&](Status st) {
                                    EXPECT_TRUE(st.ok()) << st.ToString();
                                    read.store(true,
                                               std::memory_order_release);
                                  })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return read.load(std::memory_order_acquire); }));
  EXPECT_STREQ(out, msg);
  Run([&] {
    const CacheClient::Stats* s = client().stats(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->indirect_reads, 1u);
    EXPECT_EQ(s->chain_fallbacks, 1u);
    EXPECT_EQ(s->chained_reads, 0u);
    EXPECT_TRUE(client().Delete(id).ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendCacheTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         BackendName);

/// Same full-stack slice with Options::chain_reads on: the whole chase
/// is one chained doorbell on the client NIC.
class BackendChainCacheTest : public BackendCacheTest {
 protected:
  BackendChainCacheTest() : BackendCacheTest(/*chain_reads=*/true) {}
};

TEST_P(BackendChainCacheTest, IndirectReadUsesOneChainedDoorbell) {
  Result<CacheClient::CacheId> id_or = Status::Internal("unset");
  Run([&] {
    id_or = client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 4},
                                      /*record_bytes=*/64);
  });
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "one doorbell, one wakeup";
  const uint64_t ptr_word = 64 * kKiB;  // data parked deeper in region 0
  std::atomic<int> writes_done{0};
  Run([&] {
    auto wrote = [&](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      writes_done.fetch_add(1);
    };
    EXPECT_TRUE(
        client().Write(id, 64 * kKiB, msg, sizeof(msg), wrote).ok());
    EXPECT_TRUE(
        client().Write(id, 128, &ptr_word, sizeof(ptr_word), wrote).ok());
  });
  ASSERT_TRUE(Await([&] { return writes_done.load() == 2; }));

  char out[64] = {};
  std::atomic<bool> read{false};
  Run([&] {
    EXPECT_TRUE(client()
                    .ReadIndirect(id, 128, out, sizeof(msg),
                                  [&](Status st) {
                                    EXPECT_TRUE(st.ok()) << st.ToString();
                                    read.store(true,
                                               std::memory_order_release);
                                  })
                    .ok());
  });
  ASSERT_TRUE(Await([&] { return read.load(std::memory_order_acquire); }));
  EXPECT_STREQ(out, msg);
  Run([&] {
    const CacheClient::Stats* s = client().stats(id);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->indirect_reads, 1u);
    EXPECT_EQ(s->chained_reads, 1u);
    EXPECT_EQ(s->chain_fallbacks, 0u);
    EXPECT_TRUE(client().Delete(id).ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendChainCacheTest,
                         ::testing::Values(Backend::kSim, Backend::kSocket),
                         BackendName);

// Two-sided parity (sim): with singleton conversion off and a message
// ring configured, ReadIndirect rides the batch path and the SERVER
// chases the pointer (protocol.h kReadPtr) — still one round trip.
TEST(IndirectReadTwoSidedTest, ServerChasesPointerInOneRoundTrip) {
  TestbedOptions o;
  o.pods = 2;
  o.racks_per_pod = 2;
  o.servers_per_rack = 4;
  o.client.region_bytes = 4 * kMiB;
  o.costs.one_sided_singletons = false;  // Testbed copies costs into client
  Testbed tb(o);
  auto id_or = tb.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{2, 1, 8, 4}, /*record_bytes=*/64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "server-side chase";
  const uint64_t ptr_word = 4096;
  int writes_done = 0;
  auto wrote = [&](Status st) {
    EXPECT_TRUE(st.ok()) << st.ToString();
    writes_done++;
  };
  ASSERT_TRUE(tb.client().Write(id, 4096, msg, sizeof(msg), wrote).ok());
  ASSERT_TRUE(
      tb.client().Write(id, 8192, &ptr_word, sizeof(ptr_word), wrote).ok());
  tb.sim().Run();
  ASSERT_EQ(writes_done, 2);

  char out[64] = {};
  bool read = false;
  ASSERT_TRUE(tb.client()
                  .ReadIndirect(id, 8192, out, sizeof(msg),
                                [&](Status st) {
                                  EXPECT_TRUE(st.ok()) << st.ToString();
                                  read = true;
                                })
                  .ok());
  tb.sim().Run();
  ASSERT_TRUE(read);
  EXPECT_STREQ(out, msg);
  const CacheClient::Stats* s = tb.client().stats(id);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->indirect_reads, 1u);
  // Served by the server-side chase: no NIC chain, no client fallback —
  // the indirect read rode the message ring like the two writes did.
  EXPECT_EQ(s->chained_reads, 0u);
  EXPECT_EQ(s->chain_fallbacks, 0u);
  EXPECT_EQ(s->batched_ops, 3u);
}

}  // namespace
}  // namespace redy
