#include <gtest/gtest.h>

#include "net/fabric_params.h"
#include "net/link.h"
#include "net/topology.h"

namespace redy {
namespace {

using net::FabricParams;
using net::Link;
using net::Topology;

TEST(TopologyTest, SwitchHopsMatchDataCenterTiers) {
  // 2 pods x 3 racks x 4 servers.
  Topology t(2, 3, 4);
  EXPECT_EQ(t.num_servers(), 24);
  EXPECT_EQ(t.SwitchHops(0, 0), 0);   // same server
  EXPECT_EQ(t.SwitchHops(0, 3), 1);   // same rack (ToR)
  EXPECT_EQ(t.SwitchHops(0, 4), 3);   // same pod, different rack
  EXPECT_EQ(t.SwitchHops(0, 23), 5);  // different pod
  // Symmetry.
  for (net::ServerId a : {0u, 5u, 13u}) {
    for (net::ServerId b : {2u, 11u, 23u}) {
      EXPECT_EQ(t.SwitchHops(a, b), t.SwitchHops(b, a));
    }
  }
}

TEST(TopologyTest, ServersWithinRespectsHops) {
  Topology t(2, 3, 4);
  auto rack = t.ServersWithin(0, 1);
  EXPECT_EQ(rack.size(), 3u);  // rack peers, self excluded
  auto pod = t.ServersWithin(0, 3);
  EXPECT_EQ(pod.size(), 11u);
  auto all = t.ServersWithin(0, 5);
  EXPECT_EQ(all.size(), 23u);
}

TEST(TopologyTest, MinCrossRackHopsCoversTheThreeShapes) {
  // Several racks share a pod: the closest cross-rack pair is
  // intra-pod (3 switches).
  EXPECT_EQ(Topology(2, 3, 4).MinCrossRackHops(), 3);
  EXPECT_EQ(Topology(1, 8, 32).MinCrossRackHops(), 3);
  // One rack per pod: racks only meet across pods (5 switches).
  EXPECT_EQ(Topology(4, 1, 8).MinCrossRackHops(), 5);
  // Single rack: no cross-rack pair exists.
  EXPECT_EQ(Topology(1, 1, 16).MinCrossRackHops(), 0);
}

TEST(TopologyTest, MinCrossRackLatencyIsTheLookaheadFloor) {
  FabricParams p;
  const Topology pod_shape(4, 8, 32);
  // The conservative-lookahead anchor: the propagation floor of the
  // minimum cross-rack hop count. With defaults: 600 + 3*250 ns.
  EXPECT_EQ(net::MinCrossRackLatencyNs(pod_shape, p), p.OneWayNs(3));
  EXPECT_EQ(net::MinCrossRackLatencyNs(pod_shape, p), 1350u);
  EXPECT_EQ(net::MinCrossRackLatencyNs(Topology(4, 1, 8), p), p.OneWayNs(5));
  EXPECT_EQ(net::MinCrossRackLatencyNs(Topology(1, 1, 16), p), 0u);
  // No cross-rack message can undercut the lookahead: every cross-rack
  // hop count's one-way time is >= the floor.
  const Topology& t = pod_shape;
  const uint64_t floor = net::MinCrossRackLatencyNs(t, p);
  EXPECT_GE(p.OneWayNs(t.SwitchHops(0, 40)), floor);    // intra-pod
  EXPECT_GE(p.OneWayNs(t.SwitchHops(0, 1000)), floor);  // cross-pod
}

TEST(FabricParamsTest, OneWayGrowsWithHops) {
  FabricParams p;
  EXPECT_LT(p.OneWayNs(1), p.OneWayNs(3));
  EXPECT_LT(p.OneWayNs(3), p.OneWayNs(5));
  // 3-switch round trip matches the paper's ~2.9us median network RTT.
  const double rtt_us = 2.0 * p.OneWayNs(3) / 1000.0;
  EXPECT_GT(rtt_us, 2.0);
  EXPECT_LT(rtt_us, 3.5);
}

TEST(FabricParamsTest, WireTimeScalesWithBytes) {
  FabricParams p;
  // 100 Gb/s: one MiB of payload serializes in ~84us.
  const uint64_t t1 = p.WireTimeNs(1 << 20);
  EXPECT_NEAR(static_cast<double>(t1), 84e3, 10e3);
  EXPECT_LT(p.WireTimeNs(8), p.WireTimeNs(4096));
}

TEST(LinkTest, BackToBackTransfersQueue) {
  FabricParams p;
  Link link(&p);
  const auto end1 = link.Reserve(0, 1 << 20);
  const auto end2 = link.Reserve(0, 1 << 20);
  EXPECT_GT(end2, end1);
  EXPECT_NEAR(static_cast<double>(end2), 2.0 * static_cast<double>(end1),
              static_cast<double>(end1) * 0.05);
  // A transfer requested after the link idles starts immediately.
  const auto end3 = link.Reserve(end2 + 1000, 0);
  EXPECT_GE(end3, end2 + 1000);
  EXPECT_EQ(link.bytes_sent(), 2ull * (1 << 20));
}

}  // namespace
}  // namespace redy
