#include <gtest/gtest.h>

#include "net/fabric_params.h"
#include "net/link.h"
#include "net/topology.h"

namespace redy {
namespace {

using net::FabricParams;
using net::Link;
using net::Topology;

TEST(TopologyTest, SwitchHopsMatchDataCenterTiers) {
  // 2 pods x 3 racks x 4 servers.
  Topology t(2, 3, 4);
  EXPECT_EQ(t.num_servers(), 24);
  EXPECT_EQ(t.SwitchHops(0, 0), 0);   // same server
  EXPECT_EQ(t.SwitchHops(0, 3), 1);   // same rack (ToR)
  EXPECT_EQ(t.SwitchHops(0, 4), 3);   // same pod, different rack
  EXPECT_EQ(t.SwitchHops(0, 23), 5);  // different pod
  // Symmetry.
  for (net::ServerId a : {0u, 5u, 13u}) {
    for (net::ServerId b : {2u, 11u, 23u}) {
      EXPECT_EQ(t.SwitchHops(a, b), t.SwitchHops(b, a));
    }
  }
}

TEST(TopologyTest, ServersWithinRespectsHops) {
  Topology t(2, 3, 4);
  auto rack = t.ServersWithin(0, 1);
  EXPECT_EQ(rack.size(), 3u);  // rack peers, self excluded
  auto pod = t.ServersWithin(0, 3);
  EXPECT_EQ(pod.size(), 11u);
  auto all = t.ServersWithin(0, 5);
  EXPECT_EQ(all.size(), 23u);
}

TEST(FabricParamsTest, OneWayGrowsWithHops) {
  FabricParams p;
  EXPECT_LT(p.OneWayNs(1), p.OneWayNs(3));
  EXPECT_LT(p.OneWayNs(3), p.OneWayNs(5));
  // 3-switch round trip matches the paper's ~2.9us median network RTT.
  const double rtt_us = 2.0 * p.OneWayNs(3) / 1000.0;
  EXPECT_GT(rtt_us, 2.0);
  EXPECT_LT(rtt_us, 3.5);
}

TEST(FabricParamsTest, WireTimeScalesWithBytes) {
  FabricParams p;
  // 100 Gb/s: one MiB of payload serializes in ~84us.
  const uint64_t t1 = p.WireTimeNs(1 << 20);
  EXPECT_NEAR(static_cast<double>(t1), 84e3, 10e3);
  EXPECT_LT(p.WireTimeNs(8), p.WireTimeNs(4096));
}

TEST(LinkTest, BackToBackTransfersQueue) {
  FabricParams p;
  Link link(&p);
  const auto end1 = link.Reserve(0, 1 << 20);
  const auto end2 = link.Reserve(0, 1 << 20);
  EXPECT_GT(end2, end1);
  EXPECT_NEAR(static_cast<double>(end2), 2.0 * static_cast<double>(end1),
              static_cast<double>(end1) * 0.05);
  // A transfer requested after the link idles starts immediately.
  const auto end3 = link.Reserve(end2 + 1000, 0);
  EXPECT_GE(end3, end2 + 1000);
  EXPECT_EQ(link.bytes_sent(), 2ull * (1 << 20));
}

}  // namespace
}  // namespace redy
