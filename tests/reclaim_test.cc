// Spot-reclamation notice window (Section 6.2): the allocator warns
// `reclaim_notice` ahead, the client races a migration against the
// deadline, and the outcome — data moved or data lost — is decided by
// whether the transfer beats the force-free.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "cluster/vm_allocator.h"
#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class ReclaimTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts(sim::SimTime notice) {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.reclaim_notice = notice;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 5'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }
};

TEST_F(ReclaimTest, NoticeFiresHandlerAndForceFreesAtDeadline) {
  sim::Simulation sim;
  net::Topology topo(1, 1, 4);
  constexpr sim::SimTime kNotice = 7 * kMillisecond;
  cluster::VmAllocator alloc(&sim, &topo, 64, 64 * kGiB, kNotice);

  cluster::VmId seen = cluster::kInvalidVm;
  sim::SimTime seen_deadline = 0;
  alloc.SetReclaimHandler(
      [&](const cluster::Vm& vm, sim::SimTime deadline) {
        seen = vm.id;
        seen_deadline = deadline;
      });

  auto ondemand = alloc.Allocate(2, 8 * kGiB, /*spot=*/false);
  ASSERT_TRUE(ondemand.ok());
  EXPECT_TRUE(alloc.Reclaim(ondemand->id).IsFailedPrecondition())
      << "only spot VMs get reclamation notices";

  auto spot = alloc.Allocate(2, 8 * kGiB, /*spot=*/true);
  ASSERT_TRUE(spot.ok());
  ASSERT_TRUE(alloc.Reclaim(spot->id).ok());
  // The notice is synchronous and carries deadline = now + notice.
  EXPECT_EQ(seen, spot->id);
  EXPECT_EQ(seen_deadline, sim.Now() + kNotice);

  // The VM survives until the deadline, then its resources vanish.
  sim.RunFor(kNotice - 1);
  EXPECT_NE(alloc.Find(spot->id), nullptr);
  sim.RunFor(2);
  EXPECT_EQ(alloc.Find(spot->id), nullptr);
}

TEST_F(ReclaimTest, MigrationBeatsGenerousDeadline) {
  // 2 MiB at the ~8 Gb/s paced transfer rate moves in ~2 ms; a 500 ms
  // notice leaves plenty of room, so the data must survive.
  Testbed tb(Opts(500 * kMillisecond));
  auto id_or = tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8},
                                            64, /*spot=*/true);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  std::vector<uint8_t> pattern(64 * kKiB);
  for (size_t i = 0; i < pattern.size(); i++) {
    pattern[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  ASSERT_TRUE(tb.client().Poke(id, 0, pattern.data(), pattern.size()).ok());

  auto vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  const sim::SimTime deadline = tb.sim().Now() + tb.options().reclaim_notice;
  ASSERT_TRUE(tb.allocator().Reclaim(*vm).ok());

  ASSERT_TRUE(RunUntil(tb, [&] { return !tb.client().migrations().empty(); }));
  const auto& ev = tb.client().migrations().back();
  EXPECT_FALSE(ev.data_lost);
  EXPECT_LE(ev.finished, deadline);
  EXPECT_EQ(ev.from, *vm);

  // The region now lives elsewhere and its bytes came along.
  auto new_vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(new_vm.ok());
  EXPECT_NE(*new_vm, *vm);
  std::vector<uint8_t> out(pattern.size());
  ASSERT_TRUE(tb.client().Peek(id, 0, out.data(), out.size()).ok());
  EXPECT_EQ(std::memcmp(out.data(), pattern.data(), pattern.size()), 0);
}

TEST_F(ReclaimTest, ForceFreeBeforeTransferSetsDataLost) {
  // A 100 us notice cannot fit the ~2 ms transfer: the server shuts
  // down at the deadline mid-copy and the event records the loss.
  Testbed tb(Opts(100 * kMicrosecond));
  auto id_or = tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8},
                                            64, /*spot=*/true);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  auto vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(tb.allocator().Reclaim(*vm).ok());

  ASSERT_TRUE(RunUntil(tb, [&] { return !tb.client().migrations().empty(); }));
  const auto& ev = tb.client().migrations().back();
  EXPECT_TRUE(ev.data_lost);

  // The cache stays usable on its replacement VM despite the loss.
  auto new_vm = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(new_vm.ok());
  EXPECT_NE(*new_vm, *vm);
  char buf[64] = {42};
  bool ok_after = false;
  ASSERT_TRUE(tb.client()
                  .Write(id, 0, buf, sizeof(buf),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok()) << st.ToString();
                           ok_after = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return ok_after; }));
}

}  // namespace
}  // namespace redy
