#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "faster/devices.h"
#include "faster/redy_device.h"
#include "faster/tiered_device.h"
#include "redy/testbed.h"

namespace redy {
namespace {

using faster::RedyDevice;
using faster::SsdDevice;
using faster::TieredDevice;

class RedyDeviceTest : public ::testing::Test {
 protected:
  RedyDeviceTest() {
    TestbedOptions o;
    o.client.region_bytes = 4 * kMiB;
    tb_ = std::make_unique<Testbed>(o);
    auto id = tb_->client().CreateWithConfig(kCapacity,
                                             RdmaConfig{2, 0, 1, 8}, 64);
    EXPECT_TRUE(id.ok());
    dev_ = std::make_unique<RedyDevice>(&tb_->sim(), &tb_->client(), *id,
                                        kCapacity);
  }

  void Drive(bool* done) {
    while (!*done) {
      ASSERT_TRUE(tb_->sim().Step());
    }
  }

  static constexpr uint64_t kCapacity = 8 * kMiB;
  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<RedyDevice> dev_;
};

TEST_F(RedyDeviceTest, WriteThenReadRoundTrips) {
  const char msg[] = "device bytes";
  bool wrote = false;
  dev_->WriteAsync(1000, msg, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    wrote = true;
  });
  Drive(&wrote);

  char out[32] = {};
  bool read = false;
  dev_->ReadAsync(1000, out, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    read = true;
  });
  Drive(&read);
  EXPECT_STREQ(out, msg);
}

TEST_F(RedyDeviceTest, CoversTracksHighWaterWindow) {
  EXPECT_FALSE(dev_->Covers(0, 8));  // nothing written yet
  const char byte = 'x';
  bool wrote = false;
  dev_->WriteAsync(100, &byte, 1, [&](Status) { wrote = true; });
  Drive(&wrote);
  EXPECT_TRUE(dev_->Covers(0, 100));
  EXPECT_FALSE(dev_->Covers(0, 200));  // beyond the high-water mark
}

TEST_F(RedyDeviceTest, OldSuffixEvictsAfterWrap) {
  // Write 1.5x the capacity: the first half must no longer be covered.
  std::vector<uint8_t> chunk(kMiB, 0xAB);
  uint64_t off = 0;
  while (off < kCapacity + kCapacity / 2) {
    bool done = false;
    dev_->WriteAsync(off, chunk.data(), chunk.size(),
                     [&](Status st) {
                       EXPECT_TRUE(st.ok());
                       done = true;
                     });
    Drive(&done);
    off += chunk.size();
  }
  EXPECT_FALSE(dev_->Covers(0, kMiB));          // evicted prefix
  EXPECT_TRUE(dev_->Covers(off - kMiB, kMiB));  // live tail
  // Reading the evicted prefix reports NotFound so the tiered device
  // falls through to the next tier.
  bool read_done = false;
  Status read_st;
  std::vector<uint8_t> out(16);
  dev_->ReadAsync(0, out.data(), out.size(), [&](Status st) {
    read_st = st;
    read_done = true;
  });
  // NotFound is reported synchronously.
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(read_st.IsNotFound());
}

TEST_F(RedyDeviceTest, WrapAroundAccessSplitsCorrectly) {
  // An access spanning the modulo boundary must land contiguously in
  // the virtual log even though it is split inside the cache.
  std::vector<uint8_t> data(1024);
  for (size_t i = 0; i < data.size(); i++) data[i] = i & 0xff;
  const uint64_t boundary_offset = kCapacity - 512;  // crosses the wrap

  bool wrote = false;
  dev_->WriteAsync(boundary_offset, data.data(), data.size(),
                   [&](Status st) {
                     EXPECT_TRUE(st.ok());
                     wrote = true;
                   });
  Drive(&wrote);

  std::vector<uint8_t> out(data.size(), 0);
  bool read = false;
  dev_->ReadAsync(boundary_offset, out.data(), out.size(),
                  [&](Status st) {
                    EXPECT_TRUE(st.ok());
                    read = true;
                  });
  Drive(&read);
  EXPECT_EQ(out, data);
}

TEST_F(RedyDeviceTest, TieredFallsThroughToSsdForEvictedRanges) {
  SsdDevice ssd(&tb_->sim());
  TieredDevice tiered({dev_.get(), &ssd}, /*commit_point=*/1);

  // Fill 2x capacity through the tiered device: everything lands on the
  // SSD, the last `capacity` bytes also in the Redy tier.
  std::vector<uint8_t> chunk(kMiB);
  uint64_t off = 0;
  while (off < 2 * kCapacity) {
    for (size_t i = 0; i < chunk.size(); i++) {
      chunk[i] = static_cast<uint8_t>((off + i) * 31);
    }
    bool done = false;
    tiered.WriteAsync(off, chunk.data(), chunk.size(),
                      [&](Status st) {
                        EXPECT_TRUE(st.ok());
                        done = true;
                      });
    Drive(&done);
    off += chunk.size();
  }

  // Old range: only the SSD has it.
  std::vector<uint8_t> out(256);
  bool read = false;
  tiered.ReadAsync(123, out.data(), out.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    read = true;
  });
  Drive(&read);
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i], static_cast<uint8_t>((123 + i) * 31));
  }
  EXPECT_GE(tiered.reads_on_tier(1), 1u);

  // Recent range: served by the Redy tier.
  const uint64_t recent = 2 * kCapacity - 4096;
  bool read2 = false;
  tiered.ReadAsync(recent, out.data(), out.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    read2 = true;
  });
  Drive(&read2);
  for (size_t i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i], static_cast<uint8_t>((recent + i) * 31));
  }
  EXPECT_GE(tiered.reads_on_tier(0), 1u);
}

}  // namespace
}  // namespace redy
