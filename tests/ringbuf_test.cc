#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "ringbuf/mpmc_ring.h"
#include "ringbuf/spsc_ring.h"

namespace redy {
namespace {

/// Distance in bytes between two member addresses.
uint64_t ByteDistance(const void* a, const void* b) {
  const auto x = reinterpret_cast<uintptr_t>(a);
  const auto y = reinterpret_cast<uintptr_t>(b);
  return x > y ? x - y : y - x;
}

TEST(SpscRingTest, PushPopSingleThread) {
  ringbuf::SpscRing<int> ring(8);
  for (int i = 0; i < 8; i++) EXPECT_TRUE(ring.TryPush(i));
  for (int i = 0; i < 8; i++) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullRejectsPush) {
  ringbuf::SpscRing<int> ring(4);
  size_t pushed = 0;
  while (ring.TryPush(1)) pushed++;
  EXPECT_EQ(pushed, ring.Capacity());
  EXPECT_FALSE(ring.TryPush(1));
  ring.TryPop();
  EXPECT_TRUE(ring.TryPush(1));
}

TEST(SpscRingTest, FrontPeeksWithoutConsuming) {
  ringbuf::SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  ring.TryPush(42);
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), 42);
  EXPECT_EQ(ring.Size(), 1u);
  EXPECT_EQ(*ring.TryPop(), 42);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  // Real-thread stress: every value must arrive exactly once, in order.
  ringbuf::SpscRing<uint64_t> ring(1024);
  constexpr uint64_t kN = 1'000'000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kN; i++) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  uint64_t expected = 0;
  while (expected < kN) {
    auto v = ring.TryPop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expected);
      expected++;
    }
  }
  producer.join();
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, IndexLinesAreCacheLineAlignedAndDistinct) {
  using Ring = ringbuf::SpscRing<int>;
  Ring ring(8);
  const void* prod = ring.producer_line();
  const void* cons = ring.consumer_line();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(prod) % Ring::kCacheLine, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cons) % Ring::kCacheLine, 0u);
  // The producer's index (+ its cached tail snapshot) and the
  // consumer's index (+ its cached head snapshot) must never share a
  // cache line, or the endpoints false-share on every op.
  EXPECT_GE(ByteDistance(prod, cons), Ring::kCacheLine);
}

TEST(SpscRingTest, CachedIndicesSurviveWraparoundTransitions) {
  // Drive many full->empty->full transitions on a tiny ring: each one
  // forces both endpoints' cached snapshots stale and refreshed. Any
  // missed refresh shows up as a wrong reject/accept or lost value.
  ringbuf::SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; round++) {
    while (ring.TryPush(next_push)) next_push++;
    EXPECT_FALSE(ring.TryPush(next_push));  // full is really full
    EXPECT_EQ(ring.Size(), ring.Capacity());
    while (true) {
      const int* front = ring.Front();
      auto v = ring.TryPop();
      if (!v.has_value()) {
        EXPECT_EQ(front, nullptr);
        break;
      }
      ASSERT_NE(front, nullptr);
      EXPECT_EQ(*front, *v);
      EXPECT_EQ(*v, next_pop);
      next_pop++;
    }
    EXPECT_TRUE(ring.Empty());
    // Partial refill keeps the indices off the slab boundaries.
    EXPECT_TRUE(ring.TryPush(next_push));
    next_push++;
    EXPECT_EQ(*ring.TryPop(), next_pop);
    next_pop++;
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(MpmcRingTest, CursorLinesAreCacheLineAlignedAndDistinct) {
  using Ring = ringbuf::MpmcRing<int>;
  Ring ring(8);
  const void* prod = ring.producer_line();
  const void* cons = ring.consumer_line();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(prod) % Ring::kCacheLine, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(cons) % Ring::kCacheLine, 0u);
  EXPECT_GE(ByteDistance(prod, cons), Ring::kCacheLine);
}

TEST(MpmcRingTest, PushPopSingleThread) {
  ringbuf::MpmcRing<int> ring(8);
  for (int i = 0; i < 8; i++) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(9));
  for (int i = 0; i < 8; i++) {
    auto v = ring.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(MpmcRingTest, CapacityRoundsToPowerOfTwo) {
  ringbuf::MpmcRing<int> ring(5);
  EXPECT_EQ(ring.Capacity(), 8u);
}

TEST(MpmcRingTest, ConcurrentMultiProducerMultiConsumer) {
  ringbuf::MpmcRing<uint64_t> ring(256);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr uint64_t kPerProducer = 100'000;

  std::atomic<uint64_t> total_sum{0};
  std::atomic<uint64_t> total_count{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; p++) {
    threads.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; i++) {
        const uint64_t v = p * kPerProducer + i + 1;
        while (!ring.TryPush(v)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; c++) {
    threads.emplace_back([&] {
      while (true) {
        auto v = ring.TryPop();
        if (v.has_value()) {
          total_sum.fetch_add(*v, std::memory_order_relaxed);
          total_count.fetch_add(1, std::memory_order_relaxed);
        } else if (done.load(std::memory_order_acquire) &&
                   ring.SizeApprox() == 0) {
          // Final drain attempt before exiting.
          auto last = ring.TryPop();
          if (!last.has_value()) break;
          total_sum.fetch_add(*last, std::memory_order_relaxed);
          total_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int p = 0; p < kProducers; p++) threads[p].join();
  done.store(true, std::memory_order_release);
  for (int c = 0; c < kConsumers; c++) threads[kProducers + c].join();

  const uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(total_count.load(), n);
  EXPECT_EQ(total_sum.load(), n * (n + 1) / 2);
}

}  // namespace
}  // namespace redy
