#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts(bool unpaused_reads = true,
                             bool per_region_writes = true) {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    o.client.unpaused_reads = unpaused_reads;
    o.client.pause_per_region_writes = per_region_writes;
    return o;
  }

  explicit MigrationTest() : tb_(Opts()) {}

  template <typename Pred>
  bool RunUntil(Testbed& tb, Pred pred, int max_steps = 5'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  Testbed tb_;
};

TEST_F(MigrationTest, MigrationPreservesDataAndRetargetsRegions) {
  auto id_or = tb_.client().CreateWithConfig(
      6 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  // Fill the cache with a recognizable pattern (backdoor: setup).
  std::vector<uint8_t> data(6 * kMiB);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(SplitMix64(i) & 0xff);
  }
  ASSERT_TRUE(tb_.client().Poke(id, 0, data.data(), data.size()).ok());

  auto victim_or = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(victim_or.ok());
  const cluster::VmId victim = *victim_or;

  bool done = false;
  CacheClient::MigrationEvent event;
  ASSERT_TRUE(tb_.client()
                  .MigrateVm(id, victim, tb_.sim().Now() + 30 * kSecond,
                             [&](const CacheClient::MigrationEvent& e) {
                               event = e;
                               done = true;
                             })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return done; }));

  EXPECT_FALSE(event.data_lost);
  EXPECT_GT(event.regions, 0u);
  EXPECT_GT(event.finished, event.started);
  // Every region moved off the victim.
  for (uint32_t r = 0; r < 3; r++) {
    auto vm = tb_.client().RegionVm(id, r);
    ASSERT_TRUE(vm.ok());
    EXPECT_NE(*vm, victim);
  }
  // The victim VM was released back to the allocator.
  EXPECT_EQ(tb_.allocator().Find(victim), nullptr);

  // All data survived and is readable through the normal path.
  std::vector<uint8_t> out(data.size(), 0);
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 0, out.data(), out.size(),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok()) << st.ToString();
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return read; }));
  EXPECT_EQ(out, data);

  // Migration time is recorded (Section 7.4 reports ~1s per GB on the
  // paper's testbed; our simulated fabric transfers faster — shape,
  // not absolute, is what matters).
  ASSERT_EQ(tb_.client().migrations().size(), 1u);
  EXPECT_EQ(tb_.client().migrations()[0].bytes, 6 * kMiB);
}

TEST_F(MigrationTest, ReadsKeepFlowingDuringMigration) {
  auto id_or = tb_.client().CreateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  const char msg[] = "unpaused";
  ASSERT_TRUE(tb_.client().Poke(id, 100, msg, sizeof(msg)).ok());

  auto victim = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(victim.ok());
  bool done = false;
  ASSERT_TRUE(tb_.client()
                  .MigrateVm(id, *victim, tb_.sim().Now() + 30 * kSecond,
                             [&](const CacheClient::MigrationEvent&) {
                               done = true;
                             })
                  .ok());
  // Immediately issue a read; with unpaused reads it completes even
  // though migration is in flight.
  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 100, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return read; }));
  EXPECT_FALSE(done) << "read should complete before migration finishes";
  EXPECT_STREQ(out, msg);
  ASSERT_TRUE(RunUntil(tb_, [&] { return done; }));
}

TEST_F(MigrationTest, WritesParkDuringMigrationAndReplayAfter) {
  auto id_or = tb_.client().CreateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  auto victim = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(victim.ok());
  bool done = false;
  ASSERT_TRUE(tb_.client()
                  .MigrateVm(id, *victim, tb_.sim().Now() + 30 * kSecond,
                             [&](const CacheClient::MigrationEvent&) {
                               done = true;
                             })
                  .ok());
  const char msg[] = "parked write";
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 4096, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok()) << st.ToString();
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return done && wrote; }));
  EXPECT_GT(tb_.client().stats(id)->parked_ops, 0u);

  // The write landed on the *new* placement.
  char out[16] = {};
  ASSERT_TRUE(tb_.client().Peek(id, 4096, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
}

TEST_F(MigrationTest, SpotReclaimTriggersAutoMigration) {
  auto id_or = tb_.client().CreateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64, /*spot=*/true);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  const char msg[] = "spot data";
  ASSERT_TRUE(tb_.client().Poke(id, 0, msg, sizeof(msg)).ok());

  auto victim = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(tb_.allocator().Reclaim(*victim).ok());

  // The loss notice arrives synchronously; migration runs in simulated
  // time and must complete well before the 30 s deadline.
  ASSERT_TRUE(RunUntil(tb_, [&] {
    return !tb_.client().migrations().empty();
  }));
  const auto& event = tb_.client().migrations()[0];
  EXPECT_FALSE(event.data_lost);
  EXPECT_LT(event.finished, event.started + 30 * kSecond);

  auto vm_after = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm_after.ok());
  EXPECT_NE(*vm_after, *victim);

  // Data survived the reclamation.
  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 0, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return read; }));
  EXPECT_STREQ(out, msg);
}

TEST_F(MigrationTest, NodeFailureRecoversWithDataLoss) {
  auto id_or = tb_.client().CreateWithConfig(
      4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  auto victim_vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(victim_vm.ok());
  const auto* vm = tb_.allocator().Find(*victim_vm);
  ASSERT_NE(vm, nullptr);
  const net::ServerId dead_node = vm->server;

  tb_.FailNode(dead_node);
  ASSERT_TRUE(RunUntil(tb_, [&] {
    return !tb_.client().migrations().empty();
  }));
  const auto& event = tb_.client().migrations()[0];
  // A crash gives no grace period: the copy fails and the replacement
  // regions come up empty (the application repopulates a cache).
  EXPECT_TRUE(event.data_lost);

  // The cache remains usable on the new VM.
  auto vm_after = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm_after.ok());
  const auto* nvm = tb_.allocator().Find(*vm_after);
  ASSERT_NE(nvm, nullptr);
  EXPECT_NE(nvm->server, dead_node);

  const char msg[] = "fresh start";
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 0, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok()) << st.ToString();
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil(tb_, [&] { return wrote; }));
}

TEST_F(MigrationTest, NaiveModePausesReads) {
  Testbed tb(Opts(/*unpaused_reads=*/false, /*per_region_writes=*/false));
  auto id_or =
      tb.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  const char msg[] = "paused read";
  ASSERT_TRUE(tb.client().Poke(id, 0, msg, sizeof(msg)).ok());

  auto victim = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(victim.ok());
  bool done = false;
  ASSERT_TRUE(tb.client()
                  .MigrateVm(id, *victim, tb.sim().Now() + 30 * kSecond,
                             [&](const CacheClient::MigrationEvent&) {
                               done = true;
                             })
                  .ok());
  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb.client()
                  .Read(id, 0, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  // Drive until migration completes; the read must still be parked
  // before that and complete after.
  ASSERT_TRUE(RunUntil(tb, [&] { return done; }));
  ASSERT_TRUE(RunUntil(tb, [&] { return read; }));
  EXPECT_STREQ(out, msg);
  EXPECT_GT(tb.client().stats(id)->parked_ops, 0u);
}

}  // namespace
}  // namespace redy
