#include <gtest/gtest.h>

#include "redy/protocol.h"

namespace redy {
namespace {

TEST(ProtocolTest, HeaderSizesAreStable) {
  // The wire format is shared between client and server staging code;
  // a size change would silently corrupt ring slot layout.
  EXPECT_EQ(sizeof(BatchHeader), 16u);
  EXPECT_EQ(sizeof(ResponseHeader), 8u);
  EXPECT_TRUE(sizeof(RequestHeader) == 20 || sizeof(RequestHeader) == 24);
}

TEST(ProtocolTest, RequestSlotHoldsWorstCaseBatch) {
  // A slot must hold b write requests, each with a full payload.
  for (uint32_t b : {1u, 8u, 512u}) {
    for (uint32_t rec : {8u, 64u, 4096u}) {
      const uint64_t slot = RequestSlotBytes(b, rec);
      EXPECT_GE(slot, sizeof(BatchHeader) +
                          b * (sizeof(RequestHeader) + rec));
    }
  }
}

TEST(ProtocolTest, ResponseSlotHoldsWorstCaseBatch) {
  for (uint32_t b : {1u, 8u, 512u}) {
    for (uint32_t rec : {8u, 64u, 4096u}) {
      const uint64_t slot = ResponseSlotBytes(b, rec);
      EXPECT_GE(slot, sizeof(BatchHeader) +
                          b * (sizeof(ResponseHeader) + rec));
    }
  }
}

TEST(ProtocolTest, EmptySlotHasZeroSeq) {
  BatchHeader h;
  EXPECT_EQ(h.seq, 0u);  // batches are numbered from 1; 0 means empty
}

}  // namespace
}  // namespace redy
