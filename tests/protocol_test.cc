#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "redy/protocol.h"

namespace redy {
namespace {

TEST(ProtocolTest, HeaderSizesAreStable) {
  // The wire format is shared between client and server staging code;
  // a size change would silently corrupt ring slot layout.
  EXPECT_EQ(sizeof(BatchHeader), 24u);
  EXPECT_EQ(sizeof(RequestHeader), 32u);
  EXPECT_EQ(sizeof(ResponseHeader), 16u);
}

TEST(ProtocolTest, RequestSlotHoldsWorstCaseBatch) {
  // A slot must hold b write requests, each with a full payload.
  for (uint32_t b : {1u, 8u, 512u}) {
    for (uint32_t rec : {8u, 64u, 4096u}) {
      const uint64_t slot = RequestSlotBytes(b, rec);
      EXPECT_GE(slot, sizeof(BatchHeader) +
                          b * (sizeof(RequestHeader) + rec));
    }
  }
}

TEST(ProtocolTest, ResponseSlotHoldsWorstCaseBatch) {
  for (uint32_t b : {1u, 8u, 512u}) {
    for (uint32_t rec : {8u, 64u, 4096u}) {
      const uint64_t slot = ResponseSlotBytes(b, rec);
      EXPECT_GE(slot, sizeof(BatchHeader) +
                          b * (sizeof(ResponseHeader) + rec));
    }
  }
}

TEST(ProtocolTest, EmptySlotHasZeroSeq) {
  BatchHeader h;
  EXPECT_EQ(h.seq, 0u);  // batches are numbered from 1; 0 means empty
}

// ---------------------------------------------------------------------------
// Checksums
// ---------------------------------------------------------------------------

TEST(ProtocolTest, RequestChecksumCoversHeaderAndPayload) {
  uint8_t payload[32];
  for (size_t i = 0; i < sizeof(payload); i++) {
    payload[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  RequestHeader rh;
  rh.op = OpCode::kWrite;
  rh.len = sizeof(payload);
  rh.region = 3;
  rh.epoch = 9;
  rh.offset = 4096;
  const uint32_t sum = RequestChecksum(rh, payload);

  // Any header field change, or any payload bit flip, changes the sum.
  RequestHeader other = rh;
  other.epoch = 10;
  EXPECT_NE(RequestChecksum(other, payload), sum);
  other = rh;
  other.offset = 4097;
  EXPECT_NE(RequestChecksum(other, payload), sum);
  payload[17] ^= 0x01;
  EXPECT_NE(RequestChecksum(rh, payload), sum);
  payload[17] ^= 0x01;
  EXPECT_EQ(RequestChecksum(rh, payload), sum);

  // Reads ignore the payload pointer: header-only coverage.
  rh.op = OpCode::kRead;
  EXPECT_EQ(RequestChecksum(rh, nullptr), RequestChecksum(rh, payload));
}

TEST(ProtocolTest, ResponseChecksumRoundTrips) {
  uint8_t payload[16] = {1, 2, 3, 4, 5, 6, 7, 8};
  ResponseHeader rh;
  rh.status = 0;
  rh.op = static_cast<uint8_t>(OpCode::kRead);
  rh.len = sizeof(payload);
  rh.epoch = 2;
  rh.checksum = ResponseChecksum(rh, payload);
  EXPECT_TRUE(ValidateResponseEntry(rh, payload, /*expected_epoch=*/2,
                                    /*check_epoch=*/true)
                  .ok());
}

// ---------------------------------------------------------------------------
// Negative paths: every malformed shape must be rejected with a typed
// error before any entry is interpreted.
// ---------------------------------------------------------------------------

class ResponseSlotTest : public ::testing::Test {
 protected:
  // Builds a well-formed response slot with `count` ok read entries of
  // `len` payload bytes each.
  std::vector<uint8_t> BuildSlot(uint32_t count, uint32_t len,
                                 uint32_t epoch = 1) {
    const uint64_t slot_bytes = ResponseSlotBytes(count ? count : 1, len);
    std::vector<uint8_t> slot(slot_bytes, 0);
    uint64_t off = sizeof(BatchHeader);
    for (uint32_t i = 0; i < count; i++) {
      ResponseHeader rh;
      rh.status = 0;
      rh.op = static_cast<uint8_t>(OpCode::kRead);
      rh.len = len;
      rh.epoch = epoch;
      uint8_t* payload = slot.data() + off + sizeof(ResponseHeader);
      for (uint32_t b = 0; b < len; b++) {
        payload[b] = static_cast<uint8_t>(i + b + 1);
      }
      rh.checksum = ResponseChecksum(rh, payload);
      std::memcpy(slot.data() + off, &rh, sizeof(rh));
      off += sizeof(rh) + len;
    }
    BatchHeader hdr;
    hdr.seq = 1;
    hdr.count = count;
    hdr.bytes = static_cast<uint32_t>(off);
    std::memcpy(slot.data(), &hdr, sizeof(hdr));
    return slot;
  }
};

TEST_F(ResponseSlotTest, WellFormedSlotValidates) {
  auto slot = BuildSlot(3, 8);
  EXPECT_TRUE(ValidateResponseSlot(slot.data(), slot.size(), 3).ok());
}

TEST_F(ResponseSlotTest, TruncatedBatchIsInvalidArgument) {
  auto slot = BuildSlot(2, 8);
  // Batch claims fewer bytes than one entry header needs.
  BatchHeader hdr;
  std::memcpy(&hdr, slot.data(), sizeof(hdr));
  hdr.bytes = sizeof(BatchHeader) + sizeof(ResponseHeader) / 2;
  std::memcpy(slot.data(), &hdr, sizeof(hdr));
  Status st = ValidateResponseSlot(slot.data(), slot.size(), 2);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(ResponseSlotTest, BatchBytesBeyondSlotIsInvalidArgument) {
  auto slot = BuildSlot(2, 8);
  BatchHeader hdr;
  std::memcpy(&hdr, slot.data(), sizeof(hdr));
  hdr.bytes = static_cast<uint32_t>(slot.size()) + 1;
  std::memcpy(slot.data(), &hdr, sizeof(hdr));
  Status st = ValidateResponseSlot(slot.data(), slot.size(), 2);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(ResponseSlotTest, PayloadOverrunIsInvalidArgument) {
  auto slot = BuildSlot(1, 8);
  // Entry claims more payload than the batch holds.
  ResponseHeader rh;
  std::memcpy(&rh, slot.data() + sizeof(BatchHeader), sizeof(rh));
  rh.len = 1 << 20;
  std::memcpy(slot.data() + sizeof(BatchHeader), &rh, sizeof(rh));
  Status st = ValidateResponseSlot(slot.data(), slot.size(), 1);
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST_F(ResponseSlotTest, CountMismatchIsDataCorruption) {
  auto slot = BuildSlot(2, 8);
  // The client staged 3 ops in this slot; a 2-entry response is a
  // short (corrupt) batch, not a parse error.
  Status st = ValidateResponseSlot(slot.data(), slot.size(), 3);
  EXPECT_TRUE(st.IsDataCorruption()) << st.ToString();
}

TEST_F(ResponseSlotTest, BitFlippedEntryIsDataCorruption) {
  auto slot = BuildSlot(1, 16);
  // Flip one payload bit; the entry checksum catches it.
  slot[sizeof(BatchHeader) + sizeof(ResponseHeader) + 5] ^= 0x20;
  ResponseHeader rh;
  std::memcpy(&rh, slot.data() + sizeof(BatchHeader), sizeof(rh));
  Status st = ValidateResponseEntry(
      rh, slot.data() + sizeof(BatchHeader) + sizeof(ResponseHeader),
      /*expected_epoch=*/1, /*check_epoch=*/true);
  EXPECT_TRUE(st.IsDataCorruption()) << st.ToString();
}

TEST_F(ResponseSlotTest, FlippedEpochFieldReadsAsCorruptionNotFence) {
  // A bit flip in the epoch *field* must be reported as corruption:
  // the checksum covers the epoch, and checksum mismatch is checked
  // first, so a damaged entry can never masquerade as a fence event.
  auto slot = BuildSlot(1, 8, /*epoch=*/1);
  ResponseHeader rh;
  std::memcpy(&rh, slot.data() + sizeof(BatchHeader), sizeof(rh));
  rh.epoch ^= 0x4;
  Status st = ValidateResponseEntry(
      rh, slot.data() + sizeof(BatchHeader) + sizeof(ResponseHeader),
      /*expected_epoch=*/1, /*check_epoch=*/true);
  EXPECT_TRUE(st.IsDataCorruption()) << st.ToString();
}

TEST_F(ResponseSlotTest, StaleEpochEchoIsProtectionError) {
  // A well-formed, checksum-valid entry whose epoch echo disagrees
  // with the epoch the op was issued under is the fence signal.
  auto slot = BuildSlot(1, 8, /*epoch=*/7);
  ResponseHeader rh;
  std::memcpy(&rh, slot.data() + sizeof(BatchHeader), sizeof(rh));
  Status st = ValidateResponseEntry(
      rh, slot.data() + sizeof(BatchHeader) + sizeof(ResponseHeader),
      /*expected_epoch=*/6, /*check_epoch=*/true);
  EXPECT_TRUE(st.IsProtectionError()) << st.ToString();

  // With epoch checking off (the ablation), the same entry passes.
  EXPECT_TRUE(ValidateResponseEntry(
                  rh,
                  slot.data() + sizeof(BatchHeader) + sizeof(ResponseHeader),
                  /*expected_epoch=*/6, /*check_epoch=*/false)
                  .ok());
}

}  // namespace
}  // namespace redy
