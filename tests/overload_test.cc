// Overload-resilience tests (DESIGN.md §12): the admission-control /
// budget / breaker / brownout machinery in isolation, the server-side
// kBusy pushback and credit flow against a live testbed, and a seeded
// four-tenant OverloadStorm soak asserting the resilience contract:
// no op hangs, acknowledged bytes are never lost, per-tenant quotas
// bind within 5%, retries and hedges stay under their budget
// fractions, and the same seed reproduces byte-identical telemetry.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/overload_storm.h"
#include "redy/cache_client.h"
#include "redy/overload.h"
#include "redy/testbed.h"

namespace redy {
namespace {

constexpr uint64_t kRecord = 64;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, UnconfiguredAlwaysAdmits) {
  overload::TokenBucket b;
  EXPECT_FALSE(b.configured());
  for (int i = 0; i < 100; i++) EXPECT_TRUE(b.TryTake(0));
}

TEST(TokenBucketTest, EnforcesRateAndBurst) {
  overload::TokenBucket b;
  // 1e6 ops/s = 1 op/us sustained, burst of 4.
  b.Configure(1e6, 4, /*now=*/0);
  ASSERT_TRUE(b.configured());
  for (int i = 0; i < 4; i++) EXPECT_TRUE(b.TryTake(0)) << i;
  EXPECT_FALSE(b.TryTake(0)) << "burst exhausted";
  // 2 us later exactly two tokens have refilled.
  EXPECT_TRUE(b.TryTake(2000));
  EXPECT_TRUE(b.TryTake(2000));
  EXPECT_FALSE(b.TryTake(2000));
  // Refill caps at the burst depth no matter how long the idle gap.
  EXPECT_DOUBLE_EQ(b.tokens(1 * kSecond), 4.0);
}

TEST(RetryBudgetTest, CapsWithdrawalsAtDepositFraction) {
  overload::RetryBudget budget;
  // 0.25 is exactly representable, so 4 deposits buy exactly 1 token.
  budget.Configure(0.25, /*min_reserve=*/2);
  ASSERT_TRUE(budget.enabled());
  // The cold-start reserve grants the first two withdrawals.
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
  // Four fresh deposits at fraction 0.25 buy exactly one retry.
  for (int i = 0; i < 4; i++) budget.Deposit();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());
}

TEST(RetryBudgetTest, ZeroFractionNeverLimits) {
  overload::RetryBudget budget;
  budget.Configure(0.0, 10);
  EXPECT_FALSE(budget.enabled());
  for (int i = 0; i < 100; i++) EXPECT_TRUE(budget.TryWithdraw());
}

TEST(CircuitBreakerTest, TripsProbesAndRecloses) {
  overload::CircuitBreaker br;
  const uint32_t trip_after = 3;
  const uint64_t open_ns = 1000;
  EXPECT_TRUE(br.Allow(0));
  EXPECT_FALSE(br.RecordFailure(0, trip_after, open_ns));
  EXPECT_FALSE(br.RecordFailure(0, trip_after, open_ns));
  EXPECT_TRUE(br.RecordFailure(0, trip_after, open_ns)) << "third failure trips";
  EXPECT_TRUE(br.open(500));
  EXPECT_FALSE(br.Allow(500)) << "open: no traffic";
  // Past the cooldown exactly one half-open probe is admitted.
  EXPECT_TRUE(br.Allow(1000));
  EXPECT_FALSE(br.Allow(1000)) << "one probe at a time";
  br.RecordSuccess();
  EXPECT_TRUE(br.Allow(1001)) << "probe success recloses";
}

TEST(CircuitBreakerTest, HalfOpenFailureRetripsImmediately) {
  overload::CircuitBreaker br;
  for (int i = 0; i < 2; i++) br.RecordFailure(0, 2, 1000);
  ASSERT_TRUE(br.open(100));
  ASSERT_TRUE(br.Allow(1000));  // the probe
  EXPECT_TRUE(br.RecordFailure(1000, 2, 1000)) << "failed probe retrips";
  EXPECT_FALSE(br.Allow(1500));
  EXPECT_TRUE(br.Allow(2000));
}

// ---------------------------------------------------------------------------
// Client-level behavior
// ---------------------------------------------------------------------------

class OverloadTest : public ::testing::Test {
 protected:
  static TestbedOptions BaseOpts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 20'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  static net::ServerId NodeOfRegion(Testbed& tb, CacheClient::CacheId id,
                                    uint32_t vregion) {
    auto vm = tb.client().RegionVm(id, vregion);
    EXPECT_TRUE(vm.ok());
    return tb.allocator().Find(*vm)->server;
  }
};

TEST_F(OverloadTest, TenantQuotaFailsFastAndIsAccounted) {
  Testbed tb(BaseOpts());
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  // 1e6 ops/s = 1 op/us sustained with a burst of 4.
  ASSERT_TRUE(tb.client().SetTenantQuota(*id_or, 1e6, 4).ok());

  char buf[kRecord] = {1};
  int completed = 0;
  int accepted = 0, rejected = 0;
  auto submit = [&] {
    Status st = tb.client().Write(*id_or, 0, buf, kRecord,
                                  [&](Status) { completed++; });
    if (st.ok()) {
      accepted++;
    } else {
      EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
      rejected++;
    }
  };
  // Same-instant burst: the bucket admits exactly the burst depth.
  for (int i = 0; i < 10; i++) submit();
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 6);
  // Two microseconds refill exactly two tokens.
  tb.sim().RunFor(2 * kMicrosecond);
  for (int i = 0; i < 3; i++) submit();
  EXPECT_EQ(accepted, 6);
  EXPECT_EQ(rejected, 7);

  ASSERT_TRUE(RunUntil(tb, [&] { return completed == accepted; }));
  const auto* stats = tb.client().stats(*id_or);
  EXPECT_EQ(stats->admission_rejected, 7u);
  EXPECT_EQ(stats->errors, 0u) << "admitted ops all complete cleanly";
}

TEST_F(OverloadTest, FullSubmitRingSurfacesBackpressureWithoutAborting) {
  // Satellite of DESIGN.md §12: a full client batch ring used to be a
  // REDY_CHECK abort; it must now surface as ResourceExhausted while
  // every accepted op still completes.
  TestbedOptions o = BaseOpts();
  o.client.batch_ring_capacity = 8;
  Testbed tb(o);
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());

  char buf[kRecord] = {3};
  int completed = 0, accepted = 0, rejected = 0;
  // Tight submission loop, no simulation steps in between: the ring
  // cannot drain, so admissions stop at its capacity.
  for (int i = 0; i < 32; i++) {
    Status st =
        tb.client().Write(*id_or, i * kRecord, buf, kRecord,
                          [&](Status cs) {
                            EXPECT_TRUE(cs.ok()) << cs.ToString();
                            completed++;
                          });
    if (st.ok()) {
      accepted++;
    } else {
      EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
      rejected++;
    }
  }
  // The ring rounds its capacity up internally; what matters is that
  // admissions stop at it and the overflow is a typed rejection.
  EXPECT_EQ(accepted + rejected, 32);
  EXPECT_GT(rejected, 0) << "the flood must hit the ring limit";
  EXPECT_LT(accepted, 32);
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == accepted; }));
  EXPECT_EQ(tb.client().stats(*id_or)->errors, 0u);
}

TEST_F(OverloadTest, BusyPushbackShedsAndClientRetriesAbsorb) {
  TestbedOptions o = BaseOpts();
  o.server_overload.busy_pushback = true;
  o.server_overload.credit_flow = true;
  o.server_overload.shed_low_watermark = 1;
  o.server_overload.shed_high_watermark = 2;
  o.client.credit_flow = true;
  o.client.max_retries = 10;
  o.client.retry_backoff_ns = 5 * kMicrosecond;
  o.client.retry_backoff_max_ns = 200 * kMicrosecond;
  o.client.sub_op_timeout_ns = 2 * kMillisecond;
  Testbed tb(o);
  // Four client threads (= four connections on the server's poll
  // sweep, which is what the backlog watermarks count), two-sided
  // rings with b = 2 ops per batch, q = 4 slots.
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{4, 1, 2, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);
  auto vm_or = tb.client().RegionVm(*id_or, 0);
  ASSERT_TRUE(vm_or.ok());
  CacheServer* server = tb.manager().ServerFor(*vm_or);
  ASSERT_NE(server, nullptr);

  // Warmup: establish all four connections before the stall (the
  // connect handshake itself crosses the server NIC).
  char buf[kRecord] = {5};
  int warm = 0;
  for (uint32_t t = 0; t < 4; t++) {
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, 1 * kMiB + t * kRecord, buf, kRecord,
                           [&](Status st) {
                             EXPECT_TRUE(st.ok()) << st.ToString();
                             warm++;
                           },
                           t)
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return warm == 4; }));

  // Stall the server NIC while a batch per connection is staged: when
  // the stall lifts they all land at once, the ready backlog crosses
  // the watermarks, and the server sheds with kBusy instead of queueing.
  chaos::FaultInjector::Options copts;
  copts.servers = {node};
  auto* chaos = tb.EnableChaos(copts);
  chaos->AddStall(node, tb.sim().Now(), 200 * kMicrosecond);

  int completed = 0, failed = 0;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, i * kRecord, buf, kRecord,
                           [&](Status st) {
                             completed++;
                             if (!st.ok()) failed++;
                           },
                           /*app_thread=*/i % 4)
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == 8; }));
  EXPECT_EQ(failed, 0) << "busy-backoff retries absorb the pushback";

  const auto* stats = tb.client().stats(*id_or);
  EXPECT_GT(stats->busy_pushbacks, 0u) << "client saw explicit kBusy";
  EXPECT_GT(stats->retries, 0u);
  EXPECT_GT(server->busy_shed_ops(), 0u) << "server shed instead of queueing";
  EXPECT_GT(server->credit_throttled_grants(), 0u)
      << "backlog shrank the granted send window";
}

TEST_F(OverloadTest, CircuitBreakerTripsShedsThenProbesBackIn) {
  TestbedOptions o = BaseOpts();
  o.client.circuit_breakers = true;
  o.client.breaker_trip_failures = 2;
  o.client.breaker_open_ns = 300 * kMicrosecond;
  o.client.max_retries = 0;  // surface every failure to the breaker fast
  Testbed tb(o);
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  auto* chaos = tb.EnableChaos({});
  chaos->AddFlap(tb.app_node(), node, tb.sim().Now(), 100 * kMicrosecond);

  char buf[kRecord] = {9};
  auto one_write = [&](uint64_t addr) {
    Status result = Status::OK();
    int done = 0;
    EXPECT_TRUE(tb.client()
                    .Write(*id_or, addr, buf, kRecord,
                           [&](Status st) {
                             result = st;
                             done = 1;
                           })
                    .ok());
    EXPECT_TRUE(RunUntil(tb, [&] { return done == 1; }));
    return result;
  };

  // Two transport failures on the downed link trip the breaker...
  EXPECT_FALSE(one_write(0).ok());
  EXPECT_FALSE(one_write(kRecord).ok());
  const auto* stats = tb.client().stats(*id_or);
  ASSERT_GE(stats->breaker_trips, 1u);
  // ...after which ops shed client-side without touching the wire.
  EXPECT_TRUE(one_write(2 * kRecord).IsUnavailable());
  stats = tb.client().stats(*id_or);
  EXPECT_GE(stats->shed_ops, 1u);
  EXPECT_EQ(stats->shed_bytes, stats->shed_ops * kRecord);

  // Past the flap and the open window, the half-open probe recloses the
  // breaker and fresh traffic flows.
  tb.sim().RunFor(500 * kMicrosecond);
  EXPECT_TRUE(one_write(3 * kRecord).ok());
  stats = tb.client().stats(*id_or);
  EXPECT_GE(stats->breaker_probes, 1u);
  EXPECT_TRUE(one_write(4 * kRecord).ok());
}

TEST_F(OverloadTest, BrownoutShedsLowPriorityByteExact) {
  TestbedOptions o = BaseOpts();
  o.client.brownout = true;
  o.client.brownout_trip_signals = 4;
  o.client.brownout_window_ns = 200 * kMicrosecond;
  o.client.brownout_duration_ns = 500 * kMicrosecond;
  o.client.sub_op_timeout_ns = 100 * kMicrosecond;
  o.client.max_retries = 0;
  Testbed tb(o);
  auto hi_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  auto low_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(hi_or.ok() && low_or.ok());
  // Priority classes only (rate 0 = no quota): hi is never shed, low
  // is the first class brownout drops.
  ASSERT_TRUE(tb.client().SetTenantQuota(*hi_or, 0, 0, /*priority=*/0).ok());
  ASSERT_TRUE(tb.client().SetTenantQuota(*low_or, 0, 0, /*priority=*/2).ok());

  // Strand a window of in-flight ops on a stalled NIC: the timeout
  // sweep expires them together, and that burst of overload signals
  // trips the brownout.
  const net::ServerId node = NodeOfRegion(tb, *hi_or, 0);
  auto* chaos = tb.EnableChaos({});
  chaos->AddStall(node, tb.sim().Now(), 300 * kMicrosecond);

  char buf[kRecord] = {11};
  int completed = 0;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(tb.client()
                    .Write(*hi_or, i * kRecord, buf, kRecord,
                           [&](Status) { completed++; })
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] {
    return tb.client().stats(*hi_or)->brownout_trips >= 1;
  }));

  // While the shedding window is active: low-priority submissions fail
  // fast at the front door, high-priority ones are still admitted.
  Status low_st = tb.client().Write(*low_or, 0, buf, kRecord, [](Status) {});
  EXPECT_TRUE(low_st.IsUnavailable()) << low_st.ToString();
  int hi_done = 0;
  EXPECT_TRUE(tb.client()
                  .Write(*hi_or, kMiB, buf, kRecord,
                         [&](Status) { hi_done++; })
                  .ok())
      << "priority 0 is never shed";

  const auto* low_stats = tb.client().stats(*low_or);
  EXPECT_EQ(low_stats->shed_ops, 1u);
  EXPECT_EQ(low_stats->shed_bytes, kRecord) << "shed accounting is byte-exact";

  // Past the brownout window low-priority traffic flows again.
  tb.sim().RunFor(800 * kMicrosecond);
  int low_done = 0;
  EXPECT_TRUE(tb.client()
                  .Write(*low_or, 0, buf, kRecord, [&](Status) { low_done++; })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return low_done == 1 && hi_done == 1; }));
}

// ---------------------------------------------------------------------------
// Four-tenant OverloadStorm soak
// ---------------------------------------------------------------------------

uint8_t FillByte(uint32_t tenant, uint64_t idx, uint64_t i) {
  return static_cast<uint8_t>(tenant * 37 + idx * 131 + i * 7 + 13);
}

struct TenantCounts {
  uint64_t accepted = 0;       // Submit returned OK
  uint64_t quota_rejected = 0;  // ResourceExhausted at the front door
  uint64_t shed = 0;            // Unavailable at the front door (brownout)
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t corrupt = 0;
  uint64_t pieces = 0;  // fresh sub-op pieces staged (budget deposits)

  bool operator==(const TenantCounts& o) const {
    return accepted == o.accepted && quota_rejected == o.quota_rejected &&
           shed == o.shed && ok == o.ok && failed == o.failed &&
           corrupt == o.corrupt && pieces == o.pieces;
  }
};

struct SoakOutcome {
  TenantCounts tenants[4];
  std::string telemetry_json;

  bool operator==(const SoakOutcome& o) const {
    for (int t = 0; t < 4; t++) {
      if (!(tenants[t] == o.tenants[t])) return false;
    }
    return telemetry_json == o.telemetry_json;
  }
};

class OverloadSoakTest : public OverloadTest {
 protected:
  static constexpr double kRetryFraction = 0.2;
  static constexpr double kHedgeFraction = 0.1;
  static constexpr double kMinReserve = 10.0;

  static TestbedOptions SoakOpts() {
    TestbedOptions o = BaseOpts();
    // Resilience.
    o.client.max_retries = 6;
    o.client.sub_op_timeout_ns = 150 * kMicrosecond;
    o.client.retry_backoff_ns = 5 * kMicrosecond;
    o.client.retry_backoff_max_ns = 200 * kMicrosecond;
    // Overload machinery, all on.
    o.client.retry_budget_fraction = kRetryFraction;
    o.client.hedge_budget_fraction = kHedgeFraction;
    o.client.budget_min_reserve = kMinReserve;
    o.client.circuit_breakers = true;
    o.client.breaker_trip_failures = 4;
    o.client.breaker_open_ns = 200 * kMicrosecond;
    o.client.credit_flow = true;
    o.client.brownout = true;
    o.client.brownout_trip_signals = 8;
    o.client.brownout_window_ns = 100 * kMicrosecond;
    o.client.brownout_duration_ns = 200 * kMicrosecond;
    o.server_overload.busy_pushback = true;
    o.server_overload.credit_flow = true;
    return o;
  }

  /// Open-loop four-tenant soak under a seeded OverloadStorm. Tenant 0
  /// is replicated and top priority; tenants 1-3 carry quotas with
  /// descending priority. Two of the tenants' cache nodes also take
  /// NIC stalls timed inside the storm window, so demand surges land
  /// on degraded capacity.
  static SoakOutcome RunSoak(uint64_t seed) {
    SoakOutcome out;
    Testbed tb(SoakOpts());
    // Two client threads per tenant: two connections per cache server,
    // so a stalled tenant's backlog can cross the server watermarks.
    const RdmaConfig cfg{2, 1, 8, 4};

    CacheClient::CacheId ids[4];
    auto t0_or = tb.client().CreateReplicated(2 * kMiB, cfg, 64);
    EXPECT_TRUE(t0_or.ok()) << t0_or.status().ToString();
    if (!t0_or.ok()) return out;
    ids[0] = *t0_or;
    for (int t = 1; t < 4; t++) {
      auto id_or = tb.client().CreateWithConfig(2 * kMiB, cfg, 64);
      EXPECT_TRUE(id_or.ok()) << id_or.status().ToString();
      if (!id_or.ok()) return out;
      ids[t] = *id_or;
    }

    // Quotas and priority classes. Rates are in ops/s of simulated
    // time; offered load below is at least twice each quota, so for
    // un-stalled tenants the bucket is the binding constraint.
    const double rate[4] = {0, 4e5, 2e5, 4e5};
    const double burst[4] = {0, 8, 8, 16};
    EXPECT_TRUE(tb.client().SetTenantQuota(ids[0], 0, 0, 0).ok());
    EXPECT_TRUE(tb.client().SetTenantQuota(ids[1], rate[1], burst[1], 1).ok());
    EXPECT_TRUE(tb.client().SetTenantQuota(ids[2], rate[2], burst[2], 2).ok());
    EXPECT_TRUE(tb.client().SetTenantQuota(ids[3], rate[3], burst[3], 3).ok());
    const sim::SimTime t_quota = tb.sim().Now();

    // The storm: seeded demand surges for all four tenants plus NIC
    // stalls on tenant 3's node and tenant 0's primary, placed inside
    // the storm window.
    chaos::OverloadStorm::Options sopts;
    sopts.seed = seed;
    sopts.start = tb.sim().Now();
    sopts.duration = 2 * kMillisecond;
    sopts.tenants = 4;
    sopts.surges_per_tenant = 2;
    sopts.surge_ns = 300 * kMicrosecond;
    sopts.surge_multiplier = 4.0;
    sopts.stall_victims = {NodeOfRegion(tb, ids[3], 0),
                           NodeOfRegion(tb, ids[0], 0)};
    sopts.stall_ns = 300 * kMicrosecond;
    chaos::OverloadStorm storm(&tb.sim(), sopts);
    chaos::FaultInjector::Options copts;
    copts.seed = seed;
    copts.servers = sopts.stall_victims;
    storm.Arm(tb.EnableChaos(copts));

    // Open-loop driver: every 10 us each tenant offers its base rate
    // times the storm's demand multiplier. Writes are write-once per
    // record (acked ones become ground truth); one op in four reads an
    // already-acked record back and verifies it.
    uint64_t completed = 0, accepted_total = 0;
    TenantCounts* counts = out.tenants;
    uint64_t next_idx[4] = {0, 0, 0, 0};
    std::vector<uint64_t> acked[4];
    std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
    Rng traffic_rng(seed ^ 0x5041D);
    const uint32_t base_per_tick[4] = {2, 8, 8, 8};
    const bool replicated[4] = {true, false, false, false};
    uint32_t submit_seq[4] = {0, 0, 0, 0};

    auto submit_one = [&](uint32_t t, bool is_read) {
      TenantCounts& c = counts[t];
      const uint32_t app_thread = submit_seq[t]++;
      if (is_read && acked[t].empty()) is_read = false;
      Status st;
      if (is_read) {
        const uint64_t idx =
            acked[t][traffic_rng.Uniform(acked[t].size())];
        auto dst = std::make_unique<std::vector<uint8_t>>(kRecord);
        auto* p = dst.get();
        st = tb.client().Read(
            ids[t], idx * kRecord, p->data(), kRecord,
            [&completed, &c, t, idx, p](Status cs) {
              completed++;
              if (!cs.ok()) {
                c.failed++;
                return;
              }
              c.ok++;
              for (uint64_t j = 0; j < kRecord; j++) {
                if ((*p)[j] != FillByte(t, idx, j)) {
                  c.corrupt++;
                  break;
                }
              }
            },
            app_thread);
        if (st.ok()) bufs.push_back(std::move(dst));
      } else {
        const uint64_t idx = next_idx[t];
        auto data = std::make_unique<std::vector<uint8_t>>(kRecord);
        for (uint64_t j = 0; j < kRecord; j++) {
          (*data)[j] = FillByte(t, idx, j);
        }
        st = tb.client().Write(
            ids[t], idx * kRecord, data->data(), kRecord,
            [&completed, &c, &acked, t, idx](Status cs) {
              completed++;
              if (cs.ok()) {
                c.ok++;
                acked[t].push_back(idx);
              } else {
                c.failed++;
              }
            },
            app_thread);
        if (st.ok()) {
          next_idx[t]++;
          bufs.push_back(std::move(data));
        }
      }
      if (st.ok()) {
        c.accepted++;
        accepted_total++;
        c.pieces += (!is_read && replicated[t]) ? 2 : 1;
      } else if (st.IsResourceExhausted()) {
        c.quota_rejected++;
      } else if (st.IsUnavailable()) {
        c.shed++;  // brownout at the front door (token already taken)
      } else {
        ADD_FAILURE() << "unexpected submit status " << st.ToString();
      }
    };

    sim::SimTime t_pump_end = tb.sim().Now();
    while (tb.sim().Now() <= storm.last_surge_end()) {
      t_pump_end = tb.sim().Now();
      for (uint32_t t = 0; t < 4; t++) {
        const double mult = storm.DemandMultiplier(t, tb.sim().Now());
        const uint32_t n =
            static_cast<uint32_t>(base_per_tick[t] * mult + 0.5);
        for (uint32_t k = 0; k < n; k++) {
          submit_one(t, /*is_read=*/(k % 4) == 3);
        }
      }
      tb.sim().RunFor(10 * kMicrosecond);
    }

    // Liveness: every accepted op completes — none hang in the storm's
    // wake.
    EXPECT_TRUE(RunUntil(tb, [&] { return completed == accepted_total; }))
        << "ops hung after the storm at t=" << tb.sim().Now();
    tb.sim().RunFor(500 * kMicrosecond);

    // Zero acked-byte loss: every acknowledged record reads back
    // exactly, on every tenant (including the replicated one).
    std::vector<uint8_t> rb(kRecord);
    for (uint32_t t = 0; t < 4; t++) {
      for (uint64_t idx : acked[t]) {
        EXPECT_TRUE(
            tb.client().Peek(ids[t], idx * kRecord, rb.data(), kRecord).ok());
        for (uint64_t j = 0; j < kRecord; j++) {
          if (rb[j] != FillByte(t, idx, j)) {
            counts[t].corrupt++;
            break;
          }
        }
      }
      EXPECT_EQ(counts[t].corrupt, 0u)
          << "tenant " << t << " lost acknowledged bytes";
    }

    // Per-tenant quota adherence. Tokens consumed = accepted + sheds
    // (brownout sheds happen after the bucket admits). The un-stalled
    // quota tenants (1 and 2) are offered at least 2x their rate the
    // whole run, so consumption must sit within 5% of the bucket cap;
    // the stalled tenant 3 must still never exceed it.
    uint64_t fresh_pieces = 0, sheds_total = 0;
    for (uint32_t t = 0; t < 4; t++) {
      fresh_pieces += counts[t].pieces;
      sheds_total += counts[t].shed;
      if (rate[t] == 0) continue;
      const double cap = burst[t] + rate[t] *
                                        static_cast<double>(t_pump_end -
                                                            t_quota) /
                                        1e9;
      const double consumed =
          static_cast<double>(counts[t].accepted + counts[t].shed);
      EXPECT_LE(consumed, cap * 1.05 + 2.0) << "tenant " << t;
      if (t == 1 || t == 2) {
        EXPECT_NEAR(consumed, cap, cap * 0.05 + 2.0) << "tenant " << t;
      }
      EXPECT_GT(counts[t].quota_rejected, 0u)
          << "tenant " << t << ": quota never bit under 2x offered load";
    }

    // Secondary traffic stays under its budget fraction. Breaker
    // diversions also count as hedges but are re-routings of a single
    // in-flight op (not duplicated traffic), so they get headroom
    // bounded by the observed trips.
    uint64_t retries = 0, hedges = 0, trips = 0, busy = 0, timeouts = 0;
    uint64_t admission_rejected = 0, shed_ops = 0, shed_bytes = 0;
    for (uint32_t t = 0; t < 4; t++) {
      const auto* s = tb.client().stats(ids[t]);
      retries += s->retries;
      hedges += s->hedged_to_replica;
      trips += s->breaker_trips;
      busy += s->busy_pushbacks;
      timeouts += s->timeouts;
      admission_rejected += s->admission_rejected;
      shed_ops += s->shed_ops;
      shed_bytes += s->shed_bytes;
    }
    EXPECT_LE(retries, kRetryFraction * fresh_pieces + kMinReserve + 1.0);
    EXPECT_LE(hedges,
              kHedgeFraction * fresh_pieces + kMinReserve + 128.0 * trips);
    // The storm actually stressed the system: quotas bit, and the
    // stalls produced overload signals (timeouts or explicit kBusy).
    EXPECT_GT(admission_rejected, 0u);
    EXPECT_GT(busy + timeouts, 0u) << "storm never produced overload";
    // Shed accounting is byte-exact: every op in this soak is one
    // record.
    EXPECT_EQ(shed_bytes, shed_ops * kRecord);
    // Front-door brownout sheds are a subset of the client's shed
    // accounting (the rest are breaker sheds counted mid-path).
    EXPECT_LE(sheds_total, shed_ops);

    out.telemetry_json = tb.telemetry().metrics().ToJson();
    return out;
  }
};

TEST_F(OverloadSoakTest, FourTenantStormHoldsTheResilienceContract) {
  for (uint64_t seed : {21u, 43u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    RunSoak(seed);
  }
}

TEST_F(OverloadSoakTest, SameSeedIsByteIdentical) {
  const SoakOutcome a = RunSoak(9);
  const SoakOutcome b = RunSoak(9);
  EXPECT_TRUE(a == b)
      << "same-seed soak must reproduce telemetry byte for byte";
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
}

}  // namespace
}  // namespace redy
