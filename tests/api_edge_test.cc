// Edge-case and contract tests for the public API surface: argument
// validation, Status plumbing, stats accounting, and the backdoor
// accessors used by experiment setup.

#include <gtest/gtest.h>

#include <cstring>

#include "redy/cache_client.h"
#include "redy/slo.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class ApiEdgeTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts() {
    TestbedOptions o;
    o.pods = 1;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  ApiEdgeTest() : tb_(Opts()) {}

  template <typename Pred>
  bool RunUntil(Pred pred, int max_steps = 2'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb_.sim().Step()) return pred();
    }
    return pred();
  }

  Testbed tb_;
};

TEST_F(ApiEdgeTest, OperationsOnUnknownCacheFail) {
  char buf[8];
  EXPECT_TRUE(tb_.client().Read(999, 0, buf, 8, [](Status) {}).IsNotFound());
  EXPECT_TRUE(
      tb_.client().Write(999, 0, buf, 8, [](Status) {}).IsNotFound());
  EXPECT_TRUE(tb_.client().Delete(999).IsNotFound());
  EXPECT_TRUE(tb_.client().ReshapeCapacity(999, kMiB).IsNotFound());
  EXPECT_FALSE(tb_.client().config(999).ok());
  EXPECT_EQ(tb_.client().stats(999), nullptr);
  EXPECT_EQ(tb_.client().capacity(999), 0u);
  EXPECT_FALSE(tb_.client().RegionVm(999, 0).ok());
}

TEST_F(ApiEdgeTest, CreateWithInvalidArgumentsFails) {
  // Zero capacity.
  EXPECT_FALSE(
      tb_.client().CreateWithConfig(0, RdmaConfig{1, 0, 1, 4}, 8).ok());
  // Create with an SLO but no registered model.
  Slo slo{10.0, 1.0, 8};
  EXPECT_FALSE(tb_.client().Create(kMiB, slo, kDurationInfinite).ok());
}

TEST_F(ApiEdgeTest, StatsAccountReadsWritesAndBytes) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  char buf[256] = {};
  int done = 0;
  ASSERT_TRUE(
      tb_.client().Write(id, 0, buf, 256, [&](Status) { done++; }).ok());
  ASSERT_TRUE(
      tb_.client().Read(id, 0, buf, 128, [&](Status) { done++; }).ok());
  ASSERT_TRUE(RunUntil([&] { return done == 2; }));

  auto* stats = tb_.client().stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->writes_completed, 1u);
  EXPECT_EQ(stats->reads_completed, 1u);
  EXPECT_EQ(stats->write_bytes, 256u);
  EXPECT_EQ(stats->read_bytes, 128u);
  EXPECT_EQ(stats->errors, 0u);
  EXPECT_GT(stats->read_latency_ns.Percentile(0.5), 1000u);
  tb_.client().ResetStats(id);
  EXPECT_EQ(stats->ops_completed(), 0u);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(ApiEdgeTest, InFlightTracksOutstandingOps) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  char buf[64] = {};
  int done = 0;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(
        tb_.client().Read(id, i * 64, buf, 64, [&](Status) { done++; }).ok());
  }
  EXPECT_EQ(tb_.client().InFlight(id), 3u);
  ASSERT_TRUE(RunUntil([&] { return done == 3; }));
  EXPECT_EQ(tb_.client().InFlight(id), 0u);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(ApiEdgeTest, PokePeekRespectBounds) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  const char msg[] = "backdoor";
  ASSERT_TRUE(tb_.client().Poke(id, 2 * kMiB - 4, msg, sizeof(msg)).ok());
  char out[16] = {};
  ASSERT_TRUE(tb_.client().Peek(id, 2 * kMiB - 4, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);  // spans the region boundary
  EXPECT_TRUE(
      tb_.client().Poke(id, 4 * kMiB - 2, msg, sizeof(msg)).IsOutOfRange());
  EXPECT_TRUE(
      tb_.client().Peek(id, 4 * kMiB - 2, out, sizeof(msg)).IsOutOfRange());
  EXPECT_TRUE(tb_.client().Peek(999, 0, out, 1).IsNotFound());
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(ApiEdgeTest, SloAndPerfPointHelpers) {
  Slo slo{100.0, 5.0, 8};
  EXPECT_NE(slo.ToString().find("100.0"), std::string::npos);
  EXPECT_TRUE((PerfPoint{50.0, 10.0}).Satisfies(slo));
  EXPECT_FALSE((PerfPoint{150.0, 10.0}).Satisfies(slo));   // too slow
  EXPECT_FALSE((PerfPoint{50.0, 1.0}).Satisfies(slo));     // too little
  EXPECT_TRUE((PerfPoint{100.0, 5.0}).Satisfies(slo));     // boundary
}

TEST_F(ApiEdgeTest, ConfigToStringAndEquality) {
  RdmaConfig a{1, 2, 3, 4};
  RdmaConfig b{1, 2, 3, 4};
  RdmaConfig c{1, 2, 3, 5};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "[c=1 s=2 b=3 q=4]");
}

TEST_F(ApiEdgeTest, MigrateUnknownRegionsRejected) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  EXPECT_TRUE(tb_.client()
                  .MigrateRegions(*id_or, {99}, tb_.sim().Now())
                  .IsOutOfRange());
  // Migrating zero regions or an absent VM is a harmless no-op.
  EXPECT_TRUE(tb_.client().MigrateRegions(*id_or, {}, 0).ok());
  EXPECT_TRUE(tb_.client().MigrateVm(*id_or, 424242, 0).ok());
  EXPECT_TRUE(tb_.client().Delete(*id_or).ok());
}

}  // namespace
}  // namespace redy
