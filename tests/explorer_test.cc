#include <gtest/gtest.h>

#include <algorithm>

#include "chaos/schedule_explorer.h"

namespace redy::chaos {
namespace {

ScheduleExplorer::Options CiBudget() {
  ScheduleExplorer::Options o;
  o.seed_start = 1;
  o.seed_budget = 20;
  o.buggify_p = 0.25;
  return o;
}

uint64_t Fired(const std::vector<bool>& schedule) {
  return static_cast<uint64_t>(
      std::count(schedule.begin(), schedule.end(), true));
}

// The ablation: with epoch fencing off, the explorer must find a
// schedule under which a zombie write — acknowledged against the old
// region after its chunk was snapshotted — silently corrupts acked
// bytes, within the CI seed budget. The failing schedule must shrink
// to a minimal repro that replays byte-identically.
TEST(ScheduleExplorerTest, UnfencedExplorerFindsAndShrinksZombieWrite) {
  ScheduleExplorer explorer(MigrationScenario(/*epoch_fencing=*/false),
                            CiBudget());
  ScheduleExplorer::Result r = explorer.Explore();
  ASSERT_TRUE(r.found_failure)
      << "no corruption found in " << r.seeds_explored << " seeds";
  EXPECT_TRUE(r.failure.corrupted);
  EXPECT_GT(r.failure.corrupt_records, 0u);

  // Shrinking never adds decisions, keeps at least one (a fault-free
  // run must be clean), and every survivor is load-bearing: clearing
  // any remaining fired decision makes the run pass.
  ASSERT_GE(Fired(r.shrunk_schedule), 1u);
  EXPECT_LE(Fired(r.shrunk_schedule), Fired(r.original_schedule));
  EXPECT_LE(r.shrunk_schedule.size(), r.original_schedule.size());
  for (size_t i = 0; i < r.shrunk_schedule.size(); i++) {
    if (!r.shrunk_schedule[i]) continue;
    std::vector<bool> relaxed = r.shrunk_schedule;
    relaxed[i] = false;
    EXPECT_FALSE(explorer.Replay(relaxed).corrupted)
        << "decision " << i << " is not load-bearing";
  }

  // The minimal repro is a deterministic artifact: two replays agree
  // on the fingerprint and the full decision sequence.
  EXPECT_TRUE(r.replay_deterministic) << ScheduleExplorer::ResultToString(r);
}

// The same adversarial schedule that corrupts the unfenced build is
// survived with fencing on: the revocation turns the zombie write into
// a retried (redirected) one.
TEST(ScheduleExplorerTest, FencingDefeatsTheShrunkSchedule) {
  ScheduleExplorer unfenced(MigrationScenario(/*epoch_fencing=*/false),
                            CiBudget());
  ScheduleExplorer::Result r = unfenced.Explore();
  ASSERT_TRUE(r.found_failure);

  ScheduleExplorer fenced(MigrationScenario(/*epoch_fencing=*/true),
                          CiBudget());
  RunOutcome outcome = fenced.Replay(r.shrunk_schedule);
  EXPECT_FALSE(outcome.corrupted) << outcome.detail;
}

// A fault-free run (all decisions false) is clean and byte-identical
// across replays in both fencing modes.
TEST(ScheduleExplorerTest, QuiescentScheduleIsCleanAndDeterministic) {
  for (bool fenced : {false, true}) {
    ScheduleExplorer explorer(MigrationScenario(fenced), CiBudget());
    RunOutcome a = explorer.Replay({});
    RunOutcome b = explorer.Replay({});
    EXPECT_FALSE(a.corrupted) << a.detail;
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.log.size(), b.log.size());
  }
}

}  // namespace
}  // namespace redy::chaos
