#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "faster/devices.h"
#include "faster/hash_index.h"
#include "faster/paged_store.h"
#include "faster/read_cache.h"
#include "faster/store.h"
#include "faster/tiered_device.h"
#include "sim/simulation.h"

namespace redy {
namespace {

using faster::FasterKv;
using faster::HashIndex;
using faster::LocalMemoryDevice;
using faster::PagedStore;
using faster::ReadCache;
using faster::SmbDirectDevice;
using faster::SsdDevice;
using faster::TieredDevice;

TEST(PagedStoreTest, ReadBackWrites) {
  PagedStore store(4096);
  std::vector<uint8_t> data(10000);
  for (size_t i = 0; i < data.size(); i++) data[i] = i & 0xff;
  store.Write(12345, data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  store.Read(12345, out.data(), out.size());
  EXPECT_EQ(out, data);
  // Unwritten ranges read as zero.
  uint8_t z[16];
  store.Read(1 << 30, z, 16);
  for (uint8_t b : z) EXPECT_EQ(b, 0);
  // Sparse: only ~3 pages materialized.
  EXPECT_LE(store.pages_resident(), 4u);
}

TEST(HashIndexTest, LookupUpsertUpdate) {
  HashIndex idx(16);
  EXPECT_EQ(idx.Lookup(42), HashIndex::kNotFound);
  idx.Upsert(42, 1000);
  EXPECT_EQ(idx.Lookup(42), 1000u);
  idx.Upsert(42, 2000);
  EXPECT_EQ(idx.Lookup(42), 2000u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, GrowsUnderLoad) {
  HashIndex idx(16);
  for (uint64_t k = 0; k < 10000; k++) idx.Upsert(k, k * 8);
  for (uint64_t k = 0; k < 10000; k++) {
    ASSERT_EQ(idx.Lookup(k), k * 8) << k;
  }
  EXPECT_GE(idx.buckets(), 10000u);
}

TEST(HashIndexTest, UpdateIfIsConditional) {
  HashIndex idx(16);
  idx.Upsert(7, 100);
  EXPECT_FALSE(idx.UpdateIf(7, 999, 200));
  EXPECT_EQ(idx.Lookup(7), 100u);
  EXPECT_TRUE(idx.UpdateIf(7, 100, 200));
  EXPECT_EQ(idx.Lookup(7), 200u);
  EXPECT_FALSE(idx.UpdateIf(8, 0, 1));  // absent key
}

TEST(ReadCacheTest, InsertLookupEvict) {
  ReadCache cache(4 * 16, 16);  // 4 frames of 16B records
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.frames(), 4u);
  uint8_t rec[16];
  for (uint64_t k = 0; k < 8; k++) {
    std::memset(rec, static_cast<int>(k), sizeof(rec));
    cache.Insert(k, rec);
  }
  EXPECT_LE(cache.size(), 4u);
  // Most recent insert is present.
  uint8_t out[16];
  EXPECT_TRUE(cache.Lookup(7, out));
  EXPECT_EQ(out[0], 7);
  // Something old was evicted.
  EXPECT_FALSE(cache.Lookup(0, out));
}

TEST(ReadCacheTest, InvalidateRemoves) {
  ReadCache cache(64, 16);
  uint8_t rec[16] = {1};
  cache.Insert(5, rec);
  uint8_t out[16];
  EXPECT_TRUE(cache.Lookup(5, out));
  cache.Invalidate(5);
  EXPECT_FALSE(cache.Lookup(5, out));
}

TEST(ReadCacheTest, ZeroCapacityDisables) {
  ReadCache cache(0, 16);
  EXPECT_FALSE(cache.enabled());
  uint8_t rec[16] = {};
  cache.Insert(1, rec);  // no-op
  EXPECT_FALSE(cache.Lookup(1, rec));
}

TEST(DevicesTest, LatencyOrderingLocalSmbSsd) {
  sim::Simulation sim;
  LocalMemoryDevice local(&sim);
  SmbDirectDevice smb(&sim);
  SsdDevice ssd(&sim);

  uint8_t buf[64] = {};
  sim::SimTime t_local = 0, t_smb = 0, t_ssd = 0;
  local.ReadAsync(0, buf, 64, [&](Status) { t_local = sim.Now(); });
  smb.ReadAsync(0, buf, 64, [&](Status) { t_smb = sim.Now(); });
  ssd.ReadAsync(0, buf, 64, [&](Status) { t_ssd = sim.Now(); });
  sim.Run();
  EXPECT_LT(t_local, t_smb);
  EXPECT_LT(t_smb, t_ssd);
  // SSD ~100us, SMB tens of us — the Section 1.1 hierarchy.
  EXPECT_GT(t_ssd, 80 * kMicrosecond);
  EXPECT_LT(t_smb, 80 * kMicrosecond);
}

TEST(DevicesTest, SsdRoundTripsData) {
  sim::Simulation sim;
  SsdDevice ssd(&sim);
  const char msg[] = "persistent bytes";
  bool wrote = false;
  ssd.WriteAsync(8192, msg, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    wrote = true;
  });
  sim.Run();
  ASSERT_TRUE(wrote);
  char out[32] = {};
  bool read = false;
  ssd.ReadAsync(8192, out, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    read = true;
  });
  sim.Run();
  ASSERT_TRUE(read);
  EXPECT_STREQ(out, msg);
}

TEST(DevicesTest, SsdQueuesUnderLoad) {
  sim::Simulation sim;
  SsdDevice ssd(&sim);
  uint8_t buf[64];
  std::vector<sim::SimTime> completions;
  for (int i = 0; i < 64; i++) {
    ssd.ReadAsync(i * 64, buf, 64, [&](Status) {
      completions.push_back(sim.Now());
    });
  }
  sim.Run();
  ASSERT_EQ(completions.size(), 64u);
  // 64 IOs over 8 channels: the last completion reflects ~8 serialized
  // service times, i.e. queueing is modeled.
  EXPECT_GT(completions.back(), 4 * completions.front());
}

TEST(TieredDeviceTest, ReadsFromLowestCoveringTier) {
  sim::Simulation sim;
  LocalMemoryDevice fast(&sim, 100);
  SsdDevice slow(&sim);
  TieredDevice tiered({&fast, &slow});

  const char msg[] = "tiered";
  bool wrote = false;
  tiered.WriteAsync(0, msg, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    wrote = true;
  });
  sim.Run();
  ASSERT_TRUE(wrote);

  char out[16] = {};
  const sim::SimTime start = sim.Now();
  sim::SimTime t = 0;
  tiered.ReadAsync(0, out, sizeof(msg), [&](Status st) {
    EXPECT_TRUE(st.ok());
    t = sim.Now();
  });
  sim.Run();
  EXPECT_STREQ(out, msg);
  // Served by the fast tier.
  EXPECT_LT(t - start, 10 * kMicrosecond);
  EXPECT_EQ(tiered.reads_on_tier(0), 1u);
  EXPECT_EQ(tiered.reads_on_tier(1), 0u);
}

TEST(TieredDeviceTest, CommitPointControlsAck) {
  sim::Simulation sim;
  LocalMemoryDevice fast(&sim, 100);
  SsdDevice slow(&sim);
  // Commit at tier 0: ack as soon as the fast tier has the bytes.
  TieredDevice tiered({&fast, &slow}, /*commit_point=*/0);
  const char msg[] = "x";
  sim::SimTime acked = 0;
  tiered.WriteAsync(0, msg, 1, [&](Status) { acked = sim.Now(); });
  sim.Run();
  EXPECT_LT(acked, 10 * kMicrosecond);  // did not wait for the SSD
}

class FasterKvTest : public ::testing::Test {
 protected:
  FasterKvTest() : ssd_(&sim_) {
    FasterKv::Options opt;
    opt.log_memory_bytes = 64 * 16;  // tiny window: 64 records
    opt.value_bytes = 8;
    kv_ = std::make_unique<FasterKv>(&sim_, &ssd_, opt);
  }

  uint64_t Val(uint64_t key) { return key * 2654435761u; }

  void UpsertSync(uint64_t key) {
    const uint64_t v = Val(key);
    bool done = false;
    Status st = kv_->Upsert(key, &v, [&](Status s) {
      EXPECT_TRUE(s.ok());
      done = true;
    });
    int spins = 0;
    while (st.IsResourceExhausted() && spins++ < 100000) {
      sim_.Step();
      st = kv_->Upsert(key, &v, [&](Status s) {
        EXPECT_TRUE(s.ok());
        done = true;
      });
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    while (!done) {
      ASSERT_TRUE(sim_.Step());
    }
  }

  uint64_t ReadSync(uint64_t key, Status* status_out = nullptr) {
    uint64_t out = 0;
    bool done = false;
    Status cb_status;
    EXPECT_TRUE(kv_->Read(key, &out,
                          [&](Status s) {
                            cb_status = s;
                            done = true;
                          })
                    .ok());
    while (!done) {
      if (!sim_.Step()) break;
    }
    EXPECT_TRUE(done);
    if (status_out != nullptr) *status_out = cb_status;
    return out;
  }

  sim::Simulation sim_;
  SsdDevice ssd_;
  std::unique_ptr<FasterKv> kv_;
};

TEST_F(FasterKvTest, UpsertReadRoundTrip) {
  UpsertSync(1);
  EXPECT_EQ(ReadSync(1), Val(1));
  EXPECT_EQ(kv_->stats().mem_hits, 1u);
}

TEST_F(FasterKvTest, MissingKeyReturnsNotFound) {
  Status st;
  ReadSync(999, &st);
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(FasterKvTest, SpilledRecordsComeBackFromDevice) {
  // Insert far more than the 64-record memory window.
  for (uint64_t k = 0; k < 500; k++) UpsertSync(k);
  EXPECT_GT(kv_->head_mem(), 0u);
  // Key 0 was evicted from memory; the read must hit the device and
  // still return the right value.
  const uint64_t before = kv_->stats().device_reads;
  EXPECT_EQ(ReadSync(0), Val(0));
  EXPECT_EQ(kv_->stats().device_reads, before + 1);
}

TEST_F(FasterKvTest, InPlaceUpdateInMutableRegion) {
  UpsertSync(5);
  const uint64_t appends_before = kv_->stats().appends;
  UpsertSync(5);  // still at the tail: in place
  EXPECT_EQ(kv_->stats().appends, appends_before);
  EXPECT_GE(kv_->stats().in_place_updates, 1u);
  EXPECT_EQ(ReadSync(5), Val(5));
}

TEST_F(FasterKvTest, BulkLoadPopulatesEverything) {
  ASSERT_TRUE(kv_->BulkLoad(0, 1000,
                            [](uint64_t key, void* value) {
                              const uint64_t v = key + 7;
                              std::memcpy(value, &v, 8);
                            })
                  .ok());
  // Memory-resident tail record:
  EXPECT_EQ(ReadSync(999), 999u + 7);
  // Device-resident old record:
  EXPECT_EQ(ReadSync(0), 0u + 7);
}

TEST_F(FasterKvTest, ReadCacheServesHotDeviceRecords) {
  FasterKv::Options opt;
  opt.log_memory_bytes = 64 * 16;
  opt.read_cache_bytes = 16 * 1024;
  opt.value_bytes = 8;
  SsdDevice ssd2(&sim_);
  FasterKv kv2(&sim_, &ssd2, opt);
  ASSERT_TRUE(kv2.BulkLoad(0, 1000, [](uint64_t k, void* v) {
                  std::memcpy(v, &k, 8);
                }).ok());
  auto read = [&](uint64_t key) {
    uint64_t out = 0;
    bool done = false;
    EXPECT_TRUE(kv2.Read(key, &out, [&](Status s) {
                     EXPECT_TRUE(s.ok());
                     done = true;
                   }).ok());
    while (!done) {
      if (!sim_.Step()) break;
    }
    return out;
  };
  EXPECT_EQ(read(3), 3u);  // device read, fills the cache
  const uint64_t dev_before = kv2.stats().device_reads;
  EXPECT_EQ(read(3), 3u);  // now a read-cache hit
  EXPECT_EQ(kv2.stats().device_reads, dev_before);
  EXPECT_GE(kv2.stats().read_cache_hits, 1u);
}

// Probe chains must survive wrapping past the end of the slot array at
// high load. Brute-force keys hashing to the last buckets of a minimal
// 16-slot table, chain them through the wraparound, and exercise all
// three FindSlot users (Lookup / Upsert-update / UpdateIf) on wrapped
// entries.
TEST(HashIndexTest, ProbeChainWrapsAroundAtHighLoad) {
  HashIndex idx(16);
  ASSERT_EQ(idx.buckets(), 16u);
  const uint64_t mask = idx.buckets() - 1;
  // Five keys that all hash to the last slot: the chain occupies
  // slots 15, 0, 1, 2, 3.
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; keys.size() < 5; k++) {
    if ((SplitMix64(k) & mask) == mask) keys.push_back(k);
  }
  for (size_t i = 0; i < keys.size(); i++) {
    idx.Upsert(keys[i], 1000 + i);
  }
  for (size_t i = 0; i < keys.size(); i++) {
    EXPECT_EQ(idx.Lookup(keys[i]), 1000 + i) << "lost wrapped entry " << i;
  }
  // A missing key on the same chain terminates at the first empty slot
  // past the wrap instead of walking forever.
  uint64_t missing = keys.back() + 1;
  while ((SplitMix64(missing) & mask) != mask ||
         std::find(keys.begin(), keys.end(), missing) != keys.end()) {
    missing++;
  }
  EXPECT_EQ(idx.Lookup(missing), HashIndex::kNotFound);
  // Update-in-place of a wrapped entry must find the same slot.
  idx.Upsert(keys[4], 77);
  EXPECT_EQ(idx.Lookup(keys[4]), 77u);
  EXPECT_EQ(idx.size(), 5u);
  // Conditional update across the wrap: wrong expectation refuses,
  // right one lands.
  EXPECT_FALSE(idx.UpdateIf(keys[3], 9999, 1));
  EXPECT_EQ(idx.Lookup(keys[3]), 1003u);
  EXPECT_TRUE(idx.UpdateIf(keys[3], 1003, 55));
  EXPECT_EQ(idx.Lookup(keys[3]), 55u);
  EXPECT_FALSE(idx.UpdateIf(missing, 0, 1));
}

}  // namespace
}  // namespace redy
