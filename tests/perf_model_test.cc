#include <gtest/gtest.h>

#include <cmath>

#include "redy/config.h"
#include "redy/perf_model.h"
#include "redy/slo_search.h"

namespace redy {
namespace {

// Analytic stand-in for real measurements: monotone in every parameter
// (throughput up, latency up), which is the regime the paper's model
// assumes between grid points.
PerfPoint AnalyticPerf(const RdmaConfig& cfg) {
  const double conn_tput = 0.22 * cfg.q * (1 + 0.8 * (cfg.b - 1));
  const double server_cap = cfg.s == 0 ? 1e9 : cfg.s * 38.0;
  const double tput = std::min(conn_tput * cfg.c, server_cap);
  const double lat = 4.0 + 0.15 * (cfg.b - 1) + 1.2 * (cfg.q - 1) +
                     0.002 * cfg.b * cfg.q * cfg.c;
  return PerfPoint{lat, tput};
}

ConfigBounds SmallBounds() {
  ConfigBounds b;
  b.max_client_threads = 8;
  b.record_bytes = 256;  // MaxBatch = 16
  b.max_queue_depth = 8;
  return b;
}

TEST(ConfigBoundsTest, ValidityConstraints) {
  ConfigBounds b = SmallBounds();
  EXPECT_TRUE(b.Valid({1, 0, 1, 1}));
  EXPECT_TRUE(b.Valid({8, 8, 16, 8}));
  EXPECT_FALSE(b.Valid({0, 0, 1, 1}));   // c < 1
  EXPECT_FALSE(b.Valid({9, 0, 1, 1}));   // c > C
  EXPECT_FALSE(b.Valid({2, 3, 1, 1}));   // s > c
  EXPECT_FALSE(b.Valid({1, 0, 2, 1}));   // s=0 requires b=1
  EXPECT_FALSE(b.Valid({1, 1, 17, 1}));  // b > 4KB/record
  EXPECT_FALSE(b.Valid({1, 1, 1, 9}));   // q > NIC limit
}

TEST(ConfigBoundsTest, SpaceSizeMatchesBruteForce) {
  ConfigBounds b = SmallBounds();
  uint64_t count = 0;
  for (uint32_t s = 0; s <= b.max_client_threads; s++) {
    for (uint32_t c = 1; c <= b.max_client_threads; c++) {
      for (uint32_t bb = 1; bb <= b.MaxBatch(); bb++) {
        for (uint32_t q = b.min_queue_depth; q <= b.max_queue_depth; q++) {
          if (b.Valid({c, s, bb, q})) count++;
        }
      }
    }
  }
  EXPECT_EQ(b.SpaceSize(), count);
}

TEST(ConfigBoundsTest, PaperScaleSpaceIsMillions) {
  // Section 5.2: 30 usable cores, 8-byte records (B=512), Q=16 =>
  // ~3M configurations per network distance.
  ConfigBounds b;
  b.max_client_threads = 30;
  b.record_bytes = 8;
  b.max_queue_depth = 16;
  EXPECT_GT(b.SpaceSize(), 2'000'000u);
  EXPECT_LT(b.SpaceSize(), 5'000'000u);
}

TEST(ConfigBoundsTest, PowerOfTwoGridHasEndpoints) {
  auto g = ConfigBounds::PowerOfTwoGrid(1, 30);
  EXPECT_EQ(g.front(), 1u);
  EXPECT_EQ(g.back(), 30u);
  for (size_t i = 1; i < g.size(); i++) EXPECT_LT(g[i - 1], g[i]);
  auto g2 = ConfigBounds::PowerOfTwoGrid(1, 16);
  EXPECT_EQ(g2, (std::vector<uint32_t>{1, 2, 4, 8, 16}));
}

TEST(PerfModelTest, ExactGridHitReturnsMeasurement) {
  PerfModel model(SmallBounds());
  model.AddMeasurement({1, 0, 1, 1}, PerfPoint{4.0, 0.25});
  auto p = model.Estimate({1, 0, 1, 1});
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->latency_us, 4.0);
  EXPECT_DOUBLE_EQ(p->throughput_mops, 0.25);
}

TEST(PerfModelTest, InterpolatesBetweenGridNeighbors) {
  // f(1,1,1,3) should be the mean of f(1,1,1,2) and f(1,1,1,4)
  // (the paper's example).
  PerfModel model(SmallBounds());
  model.AddMeasurement({1, 1, 1, 2}, PerfPoint{10.0, 1.0});
  model.AddMeasurement({1, 1, 1, 4}, PerfPoint{20.0, 3.0});
  auto p = model.Estimate({1, 1, 1, 3});
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->latency_us, 15.0, 1e-9);
  EXPECT_NEAR(p->throughput_mops, 2.0, 1e-9);
}

TEST(PerfModelTest, EstimateFailsWithNoNeighbors) {
  PerfModel model(SmallBounds());
  EXPECT_FALSE(model.Estimate({1, 1, 1, 3}).ok());
  EXPECT_FALSE(model.Estimate({99, 0, 1, 1}).ok());  // invalid config
}

TEST(OfflineModelerTest, GridIsFarSmallerThanSpace) {
  ConfigBounds b;
  b.max_client_threads = 30;
  b.record_bytes = 8;
  b.max_queue_depth = 16;
  OfflineModeler::Stats stats;
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, &stats);
  // Paper: interpolation reduces ~3M configs to under two thousand.
  EXPECT_LT(stats.measured, 2000u);
  EXPECT_GT(stats.space_size, 2'000'000u);
  EXPECT_EQ(stats.measured, model.num_measurements());
}

TEST(OfflineModelerTest, EarlyTerminationSkipsMeasurements) {
  ConfigBounds b;
  b.max_client_threads = 30;
  b.record_bytes = 8;
  b.max_queue_depth = 16;
  OfflineModeler::Options full;
  full.early_termination = false;
  OfflineModeler::Stats full_stats;
  OfflineModeler::Build(b, AnalyticPerf, full, &full_stats);

  OfflineModeler::Options early;
  early.early_termination = true;
  OfflineModeler::Stats early_stats;
  OfflineModeler::Build(b, AnalyticPerf, early, &early_stats);
  EXPECT_LT(early_stats.measured, full_stats.measured);
}

TEST(OfflineModelerTest, InterpolatedModelIsAccurate) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);

  // Off-grid configurations estimate within a modest relative error of
  // the analytic truth (the function is near-linear between grid
  // points).
  double worst = 0;
  int checked = 0;
  for (uint32_t s : {1u, 3u}) {
    for (uint32_t c : {3u, 5u, 7u}) {
      if (c < s) continue;
      for (uint32_t bb : {3u, 6u, 12u}) {
        for (uint32_t q : {3u, 5u, 7u}) {
          auto est = model.Estimate({c, s, bb, q});
          ASSERT_TRUE(est.ok());
          const PerfPoint truth = AnalyticPerf({c, s, bb, q});
          worst = std::max(worst,
                           std::abs(est->latency_us - truth.latency_us) /
                               truth.latency_us);
          checked++;
        }
      }
    }
  }
  EXPECT_GT(checked, 20);
  EXPECT_LT(worst, 0.35);
}

TEST(SloSearchTest, FindsSatisfyingConfig) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);

  Slo slo{50.0, 10.0, 256};
  SearchResult r = SearchSloConfig(model, slo);
  ASSERT_TRUE(r.found);
  EXPECT_LE(r.predicted.latency_us, slo.max_latency_us);
  EXPECT_GE(r.predicted.throughput_mops, slo.min_throughput_mops);
}

TEST(SloSearchTest, ReturnsCheapestServerThreadCount) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);

  // A loose SLO must come back with s as small as possible (the tree
  // visits s in increasing order and stops at the first success).
  Slo loose{500.0, 0.1, 256};
  SearchResult r = SearchSloConfig(model, loose);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.config.s, 0u);

  // A throughput-hungry SLO needs server threads.
  Slo heavy{500.0, 100.0, 256};
  SearchResult r2 = SearchSloConfig(model, heavy);
  ASSERT_TRUE(r2.found);
  EXPECT_GT(r2.config.s, 0u);
}

TEST(SloSearchTest, ImpossibleSloFails) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);
  Slo impossible{1.0, 1000.0, 256};  // 1us at 1000 MOPS
  EXPECT_FALSE(SearchSloConfig(model, impossible).found);
}

TEST(SloSearchTest, PruningReducesVisitedLeaves) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);

  // A latency-tight SLO exercises the pruning branch.
  Slo slo{6.0, 2.0, 256};
  SearchResult pruned = SearchSloConfig(model, slo, /*prune=*/true);
  SearchResult full = SearchSloConfig(model, slo, /*prune=*/false);
  EXPECT_EQ(pruned.found, full.found);
  if (pruned.found && full.found) {
    EXPECT_EQ(pruned.config, full.config);
  }
  EXPECT_LT(pruned.leaves_visited, full.leaves_visited);
}

TEST(SloSearchTest, SearchVisitsLeavesDeterministically) {
  ConfigBounds b = SmallBounds();
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);
  Slo slo{50.0, 10.0, 256};
  SearchResult a = SearchSloConfig(model, slo);
  SearchResult bb = SearchSloConfig(model, slo);
  EXPECT_EQ(a.leaves_visited, bb.leaves_visited);
  EXPECT_EQ(a.config, bb.config);
}

}  // namespace
}  // namespace redy
