// Tests for the replication extension (Section 6.2's "another
// alternative is replicating the cache"): write duplication, instant
// failover without data loss, and background re-replication.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  ReplicationTest() : tb_(Opts()) {}

  template <typename Pred>
  bool RunUntil(Pred pred, int max_steps = 5'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb_.sim().Step()) return pred();
    }
    return pred();
  }

  CacheClient::CacheId MakeCache() {
    auto id = tb_.client().CreateReplicated(4 * kMiB,
                                            RdmaConfig{1, 0, 1, 8}, 64);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  Testbed tb_;
};

TEST_F(ReplicationTest, CreateGivesEveryRegionAReplica) {
  const auto id = MakeCache();
  for (uint32_t r = 0; r < 2; r++) {
    auto rep = tb_.client().RegionReplicated(id, r);
    ASSERT_TRUE(rep.ok());
    EXPECT_TRUE(*rep);
  }
  EXPECT_TRUE(tb_.client().Delete(id).ok());
  // Both primary and replica VMs released.
  EXPECT_EQ(tb_.allocator().UnallocatedMemory(),
            tb_.allocator().TotalMemory());
}

TEST_F(ReplicationTest, WritesLandOnBothCopies) {
  const auto id = MakeCache();
  const char msg[] = "both copies";
  bool done = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 512, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           done = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return done; }));

  // Kill the primary's VM: the replica is promoted and must already
  // hold the write — readable with zero recovery delay.
  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  const net::ServerId node = tb_.allocator().Find(*vm)->server;
  tb_.FailNode(node);

  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 512, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok()) << st.ToString();
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_STREQ(out, msg);
  // And the promoted primary is on a different VM now.
  auto vm_after = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm_after.ok());
  EXPECT_NE(*vm_after, *vm);
}

TEST_F(ReplicationTest, FailoverLosesNoDataUnlikeMigration) {
  const auto id = MakeCache();
  std::vector<uint8_t> data(4 * kMiB);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(SplitMix64(i) >> 5);
  }
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 0, data.data(), data.size(),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  // Crash the primary node with NO notice. A migrating cache would
  // lose the contents (cf. MigrationTest.NodeFailureRecoversWithData-
  // Loss); the replicated cache must not.
  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  tb_.FailNode(tb_.allocator().Find(*vm)->server);

  std::vector<uint8_t> out(data.size(), 0);
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 0, out.data(), out.size(),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok()) << st.ToString();
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_EQ(out, data);
}

TEST_F(ReplicationTest, DegradedRegionsReReplicateInBackground) {
  const auto id = MakeCache();
  const char msg[] = "resilient";
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 0, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  tb_.FailNode(tb_.allocator().Find(*vm)->server);

  // After the repair completes, every region is replicated again.
  ASSERT_TRUE(RunUntil([&] {
    for (uint32_t r = 0; r < 2; r++) {
      auto rep = tb_.client().RegionReplicated(id, r);
      if (!rep.ok() || !*rep) return false;
    }
    return true;
  }));

  // A second failure of the new primary still loses nothing.
  auto vm2 = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm2.ok());
  tb_.FailNode(tb_.allocator().Find(*vm2)->server);
  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 0, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok()) << st.ToString();
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_STREQ(out, msg);
}

TEST_F(ReplicationTest, WritesDuringDegradedWindowStillApply) {
  const auto id = MakeCache();
  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  tb_.FailNode(tb_.allocator().Find(*vm)->server);

  // Immediately write while the region is degraded/repairing.
  const char msg[] = "during repair";
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 128, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok()) << st.ToString();
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  char out[16] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 128, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_STREQ(out, msg);
}

}  // namespace
}  // namespace redy
