#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "redy/perf_model.h"
#include "redy/testbed.h"

namespace redy {
namespace {

PerfPoint AnalyticPerf(const RdmaConfig& cfg) {
  const double conn = 0.25 * cfg.q * (1 + 0.7 * (cfg.b - 1));
  const double cap = cfg.s == 0 ? 1e9 : cfg.s * 40.0;
  return PerfPoint{4.0 + 0.2 * (cfg.b - 1) + 1.1 * (cfg.q - 1) +
                       0.003 * cfg.b * cfg.q * cfg.c,
                   std::min(conn * cfg.c, cap)};
}

class ReshapeTest : public ::testing::Test {
 protected:
  ReshapeTest() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    tb_ = std::make_unique<Testbed>(o);

    ConfigBounds b;
    b.max_client_threads = 8;
    b.record_bytes = 64;
    b.max_queue_depth = 8;
    OfflineModeler::Options opt;
    opt.early_termination = false;
    PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);
    for (int hops : {1, 3, 5}) {
      tb_->manager().SetModel(64, hops, model);
    }
  }

  template <typename Pred>
  bool RunUntil(Pred pred, int max_steps = 3'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb_->sim().Step()) return pred();
    }
    return pred();
  }

  std::unique_ptr<Testbed> tb_;
};

TEST_F(ReshapeTest, SloChangeReallocatesAndPreservesData) {
  Slo loose{200.0, 0.2, 64};
  auto id_or = tb_->client().Create(4 * kMiB, loose, kDurationInfinite);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;
  const RdmaConfig before = *tb_->client().config(id);

  // Fill with data, fully quiesced afterwards.
  std::vector<uint8_t> data(4 * kMiB);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(SplitMix64(i) >> 3);
  }
  bool wrote = false;
  ASSERT_TRUE(tb_->client()
                  .Write(id, 0, data.data(), data.size(),
                         [&](Status st) { wrote = st.ok(); })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  // Demand much more throughput: a different configuration is needed.
  Slo heavy{200.0, 60.0, 64};
  ASSERT_TRUE(tb_->client().Reshape(id, 4 * kMiB, heavy).ok());
  const RdmaConfig after = *tb_->client().config(id);
  EXPECT_FALSE(after == before);
  EXPECT_GT(after.s, 0u);  // throughput needs server threads

  // Contents survived the reallocation; read through the new config.
  std::vector<uint8_t> out(data.size(), 0);
  bool read = false;
  ASSERT_TRUE(tb_->client()
                  .Read(id, 0, out.data(), out.size(),
                        [&](Status st) { read = st.ok(); })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_EQ(out, data);
  EXPECT_TRUE(tb_->client().Delete(id).ok());
}

TEST_F(ReshapeTest, FailedSloChangeLeavesCacheUntouched) {
  Slo loose{200.0, 0.2, 64};
  auto id_or = tb_->client().Create(4 * kMiB, loose, kDurationInfinite);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  const RdmaConfig before = *tb_->client().config(id);

  // Impossible SLO: Reshape must fail and change nothing (Section 3.3).
  Slo impossible{0.1, 100000.0, 64};
  EXPECT_FALSE(tb_->client().Reshape(id, 4 * kMiB, impossible).ok());
  EXPECT_TRUE(*tb_->client().config(id) == before);
  EXPECT_EQ(tb_->client().capacity(id), 4 * kMiB);
}

TEST_F(ReshapeTest, ReshapeRejectedWhileIoInFlight) {
  auto id_or =
      tb_->client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  char buf[64] = {};
  bool done = false;
  ASSERT_TRUE(tb_->client()
                  .Write(id, 0, buf, 64, [&](Status) { done = true; })
                  .ok());
  // In flight right now: Reshape must refuse.
  EXPECT_TRUE(
      tb_->client().ReshapeCapacity(id, 8 * kMiB).IsFailedPrecondition());
  ASSERT_TRUE(RunUntil([&] { return done; }));
  // Quiescent: allowed.
  EXPECT_TRUE(tb_->client().ReshapeCapacity(id, 8 * kMiB).ok());
}

TEST_F(ReshapeTest, ShrinkTruncatesAndNeverGrowsUsage) {
  auto id_or =
      tb_->client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const uint64_t used_before = tb_->allocator().TotalMemory() -
                               tb_->allocator().UnallocatedMemory();
  ASSERT_TRUE(tb_->client().ReshapeCapacity(*id_or, 2 * kMiB).ok());
  const uint64_t used_after = tb_->allocator().TotalMemory() -
                              tb_->allocator().UnallocatedMemory();
  // Regions packed onto one menu VM keep the VM alive; usage never
  // grows on a shrink and the address space is truncated.
  EXPECT_LE(used_after, used_before);
  EXPECT_EQ(tb_->client().capacity(*id_or), 2 * kMiB);
  char buf[8];
  EXPECT_TRUE(tb_->client()
                  .Read(*id_or, 4 * kMiB, buf, 8, [](Status) {})
                  .IsOutOfRange());
}

}  // namespace
}  // namespace redy
