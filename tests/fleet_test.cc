#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cluster/fleet.h"
#include "common/units.h"

namespace redy {
namespace {

using cluster::Fleet;
using cluster::FleetOptions;

// A fleet small enough for unit tests: 2 pods x 2 racks x 4 servers,
// 12 tenants, a few simulated milliseconds. Counts below are asserted
// structurally (> 0, invariants between counters) rather than as exact
// values, so the tests hold across libm implementations; exactness
// across worker counts is covered by the byte-compare test.
FleetOptions SmallFleet() {
  FleetOptions o;
  o.pods = 2;
  o.racks_per_pod = 2;
  o.servers_per_rack = 4;
  // Small servers pack to zero free cores far more often than the
  // 64-core default, so even a 16-server fleet strands reliably.
  o.cores_per_server = 16;
  o.memory_per_server = 192 * kGiB;
  o.tenants = 12;
  o.regions_per_tenant = 2;
  o.warmup = 4 * kMillisecond;
  o.duration = 6 * kMillisecond;
  o.seed = 7;
  return o;
}

TEST(FleetTest, ServesTrafficOutOfHarvestedMemory) {
  Fleet fleet(SmallFleet());
  fleet.Run();
  const Fleet::Summary s = fleet.Summarize();

  // Traffic was served, and the control plane placed remote regions.
  EXPECT_GT(s.ops_ok, 0u);
  EXPECT_GT(s.placements, 0u);
  EXPECT_GT(s.vms_started, 0u);
  EXPECT_GT(s.median_stranded_fraction, 0.0);

  // Per-class stats partition the fleet totals.
  uint64_t class_ops = 0, class_slo = 0;
  for (const auto& c : s.classes) {
    class_ops += c.ops_ok;
    class_slo += c.slo_violations;
    if (c.ops_ok > 0) {
      EXPECT_GT(c.p50_ns, 0u);
      EXPECT_GE(c.p99_ns, c.p50_ns);
    }
  }
  EXPECT_EQ(class_ops, s.ops_ok);
  EXPECT_EQ(class_slo, s.slo_violations);

  // A region can only be lost to an eviction.
  EXPECT_LE(s.region_losses, s.evictions);

  // The Fig. 1 reachability distribution covers every server.
  EXPECT_EQ(s.reachable_stranded_3hop.size(),
            static_cast<size_t>(fleet.topology().num_servers()));
}

TEST(FleetTest, SameSeedWorkerCountsAreByteIdentical) {
  FleetOptions a = SmallFleet();
  a.workers = 1;
  FleetOptions b = SmallFleet();
  b.workers = 3;

  Fleet one(a);
  one.Run();
  Fleet three(b);
  three.Run();

  const std::string s1 = one.MetricsSnapshot();
  const std::string s3 = three.MetricsSnapshot();
  ASSERT_FALSE(s1.empty());
  EXPECT_EQ(s1, s3) << "sharded run diverged from single-threaded run";

  // Engine-level accounting agrees too, not just the telemetry.
  EXPECT_EQ(one.engine().events_executed(),
            three.engine().events_executed());
  EXPECT_EQ(one.engine().messages_sent(), three.engine().messages_sent());
}

TEST(FleetTest, BrownsOutToLocalMemoryBeforePlacement) {
  // With almost no warmup the first placement requests find an empty
  // headroom table at the manager and get deferred; tenants must keep
  // serving from local memory (Redy's brownout fallback) meanwhile.
  FleetOptions o = SmallFleet();
  o.warmup = 1 * kMillisecond;
  o.duration = 3 * kMillisecond;
  Fleet fleet(o);
  fleet.Run();
  const Fleet::Summary s = fleet.Summarize();
  EXPECT_GT(s.ops_local, 0u);
  EXPECT_GT(s.ops_ok, 0u);
}

TEST(FleetTest, EvictionPressureRevokesRegions) {
  // Shrink the servers and fatten the regions so VM arrivals collide
  // with installed regions: the rack reclaims (newest-first) and the
  // tenant sees OnRegionLost and re-places.
  // Tight memory: a memory-heavy VM mix can push a 16-core server to
  // ~128 GiB used, leaving less free than the installed regions.
  FleetOptions o = SmallFleet();
  o.memory_per_server = 128 * kGiB;
  o.region_bytes = 8 * kGiB;
  o.regions_per_tenant = 4;
  o.warmup = 4 * kMillisecond;
  o.duration = 8 * kMillisecond;
  Fleet fleet(o);
  fleet.Run();
  const Fleet::Summary s = fleet.Summarize();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.region_losses, s.evictions);
  // Lost regions are re-requested, so placements outnumber the
  // steady-state region count.
  EXPECT_GT(s.placements, 0u);
}

}  // namespace
}  // namespace redy
