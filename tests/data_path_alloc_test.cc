// Steady-state zero-allocation regression tests for the Redy data
// path (DESIGN.md §10). Every operator-new form funnels through a
// global counter; after a warm-up phase that sizes rings, pools, and
// flat maps, a full issue->completion batch on the client one-sided
// path and on the two-sided batched path (which drives the server
// poll loop, batch execution, and the deferred response post) must
// allocate NOTHING. A regression here means a per-op allocation crept
// back in — shared_ptr op state, an oversized event-lambda capture
// falling back to the heap, or a hash map rehashing mid-flight.

#include <gtest/gtest.h>

#include <execinfo.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "redy/cache_client.h"
#include "redy/testbed.h"

// ---------------------------------------------------------------------------
// Global allocation counter (same pattern as telemetry_test.cc).
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocations{0};
std::atomic<bool> g_trap{false};  // debugging aid: trap on first alloc

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (g_trap.load(std::memory_order_relaxed)) {
    g_trap.store(false, std::memory_order_relaxed);
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
    g_trap.store(true, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace redy {
namespace {

constexpr int kBatchOps = 64;
constexpr uint64_t kRecordBytes = 64;

/// Issues `kBatchOps` alternating reads and writes, runs the simulator
/// until all complete, and returns the number of heap allocations the
/// whole round trip performed.
uint64_t RunBatch(Testbed& tb, CacheClient::CacheId id,
                  std::vector<uint8_t>& buf) {
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  int done = 0;
  auto cb = [&done](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    done++;
  };
  static_assert(CacheClient::Callback::fits_inline<decltype(cb)>(),
                "test callback must stay inline");
  for (int i = 0; i < kBatchOps; i++) {
    const uint64_t addr = static_cast<uint64_t>(i) * kRecordBytes;
    Status st = (i % 2 == 0)
                    ? tb.client().Read(id, addr, buf.data(), buf.size(), cb)
                    : tb.client().Write(id, addr, buf.data(), buf.size(), cb);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  while (done < kBatchOps && tb.sim().Step()) {
  }
  EXPECT_EQ(done, kBatchOps);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// One-sided path (s == 0): reads become RDMA READs from the persistent
// staging ring, writes become RDMA WRITEs. Client issue, QP transfer,
// sequencer delivery, and completion drain must all run pool-to-pool.
TEST(DataPathAllocTest, OneSidedSteadyStateAllocatesNothing) {
  Testbed tb;
  auto id_or = tb.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{1, 0, 1, 8}, kRecordBytes);
  ASSERT_TRUE(id_or.ok());
  std::vector<uint8_t> buf(kRecordBytes, 0xAB);

  // Warm-up: registers the staging ring, sizes the in-flight flat
  // maps, fills the payload/op pools, grows the event pool.
  for (int i = 0; i < 4; i++) (void)RunBatch(tb, *id_or, buf);

  if (std::getenv("REDY_TRAP_ALLOC") != nullptr) g_trap = true;
  EXPECT_EQ(RunBatch(tb, *id_or, buf), 0u)
      << "one-sided issue->completion allocated on the steady state";
  g_trap = false;
}

// Two-sided batched path (s > 0): ops accumulate into slot batches,
// the server poll thread consumes them, executes the batch, and
// RDMA-writes the response ring. Covers the server's poll loop and
// deferred-post event as well as the client's response drain.
TEST(DataPathAllocTest, TwoSidedBatchAndServerPollAllocateNothing) {
  Testbed tb;
  auto id_or = tb.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{1, 1, 8, 4}, kRecordBytes);
  ASSERT_TRUE(id_or.ok());
  std::vector<uint8_t> buf(kRecordBytes, 0xCD);

  for (int i = 0; i < 4; i++) (void)RunBatch(tb, *id_or, buf);

  if (std::getenv("REDY_TRAP_ALLOC") != nullptr) g_trap = true;
  EXPECT_EQ(RunBatch(tb, *id_or, buf), 0u)
      << "two-sided batch path (client + server poll) allocated on the "
         "steady state";
  g_trap = false;
}

/// Issues `kBatchOps` chained indirect reads (one PostChain doorbell
/// each) and returns the allocations the round trips performed.
uint64_t RunChainBatch(Testbed& tb, CacheClient::CacheId id,
                       std::vector<uint8_t>& buf) {
  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  int done = 0;
  auto cb = [&done](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    done++;
  };
  static_assert(CacheClient::Callback::fits_inline<decltype(cb)>(),
                "test callback must stay inline");
  for (int i = 0; i < kBatchOps; i++) {
    const uint64_t ptr_addr = 4096 + static_cast<uint64_t>(i) * 8;
    Status st =
        tb.client().ReadIndirect(id, ptr_addr, buf.data(), buf.size(), cb);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  while (done < kBatchOps && tb.sim().Step()) {
  }
  EXPECT_EQ(done, kBatchOps);
  return g_allocations.load(std::memory_order_relaxed) - before;
}

// Chained pointer chases (DESIGN.md §15): the PostChain descriptor
// block rides the pooled ChainOp records, the per-hop NIC events come
// from the event pool, and the single completion drains through the
// same pooled machinery as a plain READ. After warm-up a whole batch
// of two-hop chases must not allocate.
TEST(DataPathAllocTest, ChainedIndirectReadsAllocateNothing) {
  TestbedOptions to;
  to.client.chain_reads = true;
  Testbed tb(to);
  auto id_or = tb.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{1, 0, 1, 8}, kRecordBytes);
  ASSERT_TRUE(id_or.ok());
  std::vector<uint8_t> buf(kRecordBytes, 0xEF);

  // Ground truth: records at 64 KiB, pointer words at 4 KiB.
  int setup = 0;
  auto wrote = [&setup](Status s) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    setup++;
  };
  std::vector<uint64_t> words(kBatchOps);
  for (int i = 0; i < kBatchOps; i++) {
    words[i] = 64 * kKiB + static_cast<uint64_t>(i) * kRecordBytes;
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, words[i], buf.data(), buf.size(), wrote)
                    .ok());
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, 4096 + static_cast<uint64_t>(i) * 8,
                           &words[i], sizeof(words[i]), wrote)
                    .ok());
  }
  while (setup < 2 * kBatchOps && tb.sim().Step()) {
  }
  ASSERT_EQ(setup, 2 * kBatchOps);

  // Warm-up grows the ChainOp pool alongside rings and flat maps.
  for (int i = 0; i < 4; i++) (void)RunChainBatch(tb, *id_or, buf);

  if (std::getenv("REDY_TRAP_ALLOC") != nullptr) g_trap = true;
  EXPECT_EQ(RunChainBatch(tb, *id_or, buf), 0u)
      << "chained issue->completion allocated on the steady state";
  g_trap = false;
}

}  // namespace
}  // namespace redy
