#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "redy/cache_client.h"
#include "redy/measurement.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class RedyCacheTest : public ::testing::Test {
 protected:
  static TestbedOptions SmallOptions() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 4 * kMiB;
    return o;
  }

  RedyCacheTest() : tb_(SmallOptions()) {}

  // Runs the sim until the predicate holds or the step budget runs out.
  template <typename Pred>
  bool RunUntil(Pred pred, int max_steps = 2'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb_.sim().Step()) return pred();
    }
    return pred();
  }

  Testbed tb_;
};

TEST_F(RedyCacheTest, OneSidedWriteReadRoundTrip) {
  auto id_or = tb_.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{1, 0, 1, 4}, /*record_bytes=*/64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  const char msg[] = "stranded memory as a cache";
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 4096, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  char out[64] = {};
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 4096, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_STREQ(out, msg);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(RedyCacheTest, BatchedTwoSidedRoundTrip) {
  auto id_or = tb_.client().CreateWithConfig(
      8 * kMiB, RdmaConfig{2, 1, 8, 4}, /*record_bytes=*/32);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;

  // Issue a burst of writes so batches actually form, then read back.
  constexpr int kOps = 64;
  std::vector<std::vector<uint8_t>> payloads(kOps);
  int writes_done = 0;
  for (int i = 0; i < kOps; i++) {
    payloads[i].assign(32, static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(tb_.client()
                    .Write(id, i * 32, payloads[i].data(), 32,
                           [&](Status st) {
                             EXPECT_TRUE(st.ok()) << st.ToString();
                             writes_done++;
                           },
                           /*app_thread=*/i % 2)
                    .ok());
  }
  ASSERT_TRUE(RunUntil([&] { return writes_done == kOps; }));

  std::vector<std::vector<uint8_t>> results(kOps,
                                            std::vector<uint8_t>(32, 0));
  int reads_done = 0;
  for (int i = 0; i < kOps; i++) {
    ASSERT_TRUE(tb_.client()
                    .Read(id, i * 32, results[i].data(), 32,
                          [&](Status st) {
                            EXPECT_TRUE(st.ok());
                            reads_done++;
                          },
                          i % 2)
                    .ok());
  }
  ASSERT_TRUE(RunUntil([&] { return reads_done == kOps; }));
  for (int i = 0; i < kOps; i++) {
    EXPECT_EQ(results[i], payloads[i]) << "record " << i;
  }

  // The burst must have produced real batching on the two-sided path.
  EXPECT_GT(tb_.client().stats(id)->batched_ops, 0u);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(RedyCacheTest, OpsSpanningRegionBoundaries) {
  auto id_or = tb_.client().CreateWithConfig(
      12 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  // Write a buffer straddling the 4 MiB region boundary.
  std::vector<uint8_t> buf(1 * kMiB);
  for (size_t i = 0; i < buf.size(); i++) buf[i] = static_cast<uint8_t>(i);
  const uint64_t addr = 4 * kMiB - 512 * kKiB;
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, addr, buf.data(), buf.size(),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));

  std::vector<uint8_t> out(buf.size(), 0);
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, addr, out.data(), out.size(),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_EQ(out, buf);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(RedyCacheTest, OutOfRangeIsRejected) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 8);
  ASSERT_TRUE(id_or.ok());
  char buf[8];
  EXPECT_TRUE(tb_.client()
                  .Read(*id_or, 4 * kMiB - 4, buf, 8, [](Status) {})
                  .IsOutOfRange());
  EXPECT_TRUE(
      tb_.client().Read(*id_or, 0, buf, 0, [](Status) {}).IsInvalidArgument());
  EXPECT_TRUE(tb_.client().Delete(*id_or).ok());
}

TEST_F(RedyCacheTest, CreatePopulatesFromFile) {
  std::vector<uint8_t> file(6 * kMiB);
  for (size_t i = 0; i < file.size(); i++) {
    file[i] = static_cast<uint8_t>(i * 2654435761u >> 3);
  }
  // Create requires a model; use CreateWithConfig + manual population
  // via the file parameter of Create once a model exists is covered in
  // manager tests. Here: config path + file.
  auto id_or =
      tb_.client().CreateWithConfig(6 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  // Write then read the full contents through the cache to prove the
  // address space is fully usable.
  const auto id = *id_or;
  bool wrote = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 0, file.data(), file.size(),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));
  std::vector<uint8_t> out(file.size(), 0);
  bool read = false;
  ASSERT_TRUE(tb_.client()
                  .Read(id, 0, out.data(), out.size(),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_EQ(out, file);
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(RedyCacheTest, MeasurementAppReportsSaneNumbers) {
  MeasurementApp app(&tb_);
  MeasurementApp::WorkloadOptions w;
  w.cache_bytes = 4 * kMiB;
  w.record_bytes = 8;
  w.warmup = 100 * kMicrosecond;
  w.window = 500 * kMicrosecond;

  // Latency-optimal configuration: ~a few microseconds, sub-MOPS.
  auto lat_or = app.Measure(RdmaConfig{1, 0, 1, 1}, w);
  ASSERT_TRUE(lat_or.ok()) << lat_or.status().ToString();
  EXPECT_GT(lat_or->ops, 10u);
  EXPECT_EQ(lat_or->errors, 0u);
  EXPECT_GT(lat_or->point.latency_us, 1.0);
  EXPECT_LT(lat_or->point.latency_us, 12.0);

  // A batched configuration must deliver far more throughput.
  auto tput_or = app.Measure(RdmaConfig{4, 2, 64, 8}, w);
  ASSERT_TRUE(tput_or.ok()) << tput_or.status().ToString();
  EXPECT_EQ(tput_or->errors, 0u);
  EXPECT_GT(tput_or->point.throughput_mops,
            5.0 * lat_or->point.throughput_mops);
  // ...at the cost of latency.
  EXPECT_GT(tput_or->point.latency_us, lat_or->point.latency_us);
}

TEST_F(RedyCacheTest, ReshapeCapacityGrowAndShrink) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  // Grow to 12 MiB.
  ASSERT_TRUE(tb_.client().ReshapeCapacity(id, 12 * kMiB).ok());
  EXPECT_EQ(tb_.client().capacity(id), 12 * kMiB);

  // Data written into the grown part round-trips.
  const char msg[] = "grown";
  bool wrote = false, read = false;
  char out[8] = {};
  ASSERT_TRUE(tb_.client()
                  .Write(id, 10 * kMiB, msg, sizeof(msg),
                         [&](Status st) {
                           EXPECT_TRUE(st.ok());
                           wrote = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return wrote; }));
  ASSERT_TRUE(tb_.client()
                  .Read(id, 10 * kMiB, out, sizeof(msg),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok());
                          read = true;
                        })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return read; }));
  EXPECT_STREQ(out, msg);

  // Shrink back; accesses past the end now fail.
  ASSERT_TRUE(tb_.client().ReshapeCapacity(id, 4 * kMiB).ok());
  EXPECT_EQ(tb_.client().capacity(id), 4 * kMiB);
  char buf[8];
  EXPECT_TRUE(tb_.client()
                  .Read(id, 10 * kMiB, buf, 8, [](Status) {})
                  .IsOutOfRange());
  EXPECT_TRUE(tb_.client().Delete(id).ok());
}

TEST_F(RedyCacheTest, WritesSmallerThanInlineThresholdAreFasterThanLarger) {
  // Per-op write latency around the 172 B inlining threshold
  // (Fig. 11b's step).
  MeasurementApp app(&tb_);
  MeasurementApp::WorkloadOptions w;
  w.cache_bytes = 4 * kMiB;
  w.write_fraction = 1.0;
  w.warmup = 50 * kMicrosecond;
  w.window = 300 * kMicrosecond;
  w.inflight_override = 1;  // unloaded: pure latency

  w.record_bytes = 128;  // inlined
  auto small = app.Measure(RdmaConfig{1, 0, 1, 1}, w);
  ASSERT_TRUE(small.ok());
  w.record_bytes = 256;  // not inlined
  auto large = app.Measure(RdmaConfig{1, 0, 1, 1}, w);
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->point.latency_us, large->point.latency_us);
}

}  // namespace
}  // namespace redy
