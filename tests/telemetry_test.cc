// Telemetry subsystem tests: metrics registry snapshots, windowed-
// histogram rotation, span nesting/parenting, Perfetto-JSON validity
// and byte-for-byte determinism across identically seeded runs, the
// ResetStats-vs-background-poller race regression, and the zero-
// allocation guard for the disabled tracer on the read hot path.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/storm.h"
#include "redy/cache_client.h"
#include "redy/testbed.h"
#include "telemetry/telemetry.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator-new form funnels through
// CountedAlloc so tests can assert "this code path allocates nothing".
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace redy {
namespace {

using telemetry::MetricsRegistry;
using telemetry::SpanTracer;
using telemetry::WindowedHistogram;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (structure only, no DOM):
// enough to prove the exported artifacts parse as strict JSON.
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    pos_++;  // '{'
    SkipWs();
    if (Peek() == '}') { pos_++; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      pos_++;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      if (Peek() == '}') { pos_++; return true; }
      return false;
    }
  }
  bool Array() {
    pos_++;  // '['
    SkipWs();
    if (Peek() == ']') { pos_++; return true; }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { pos_++; continue; }
      if (Peek() == ']') { pos_++; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') pos_++;
      pos_++;
    }
    if (pos_ >= s_.size()) return false;
    pos_++;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') pos_++;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesAndSnapshots) {
  sim::Simulation sim;
  MetricsRegistry reg(&sim);

  telemetry::Counter* c =
      reg.GetCounter("redy.test.ops", {{"cache", "1"}, {"vm", "7"}});
  telemetry::Counter* same =
      reg.GetCounter("redy.test.ops", {{"cache", "1"}, {"vm", "7"}});
  EXPECT_EQ(c, same);  // one identity, one object
  telemetry::Counter* other =
      reg.GetCounter("redy.test.ops", {{"cache", "2"}, {"vm", "7"}});
  EXPECT_NE(c, other);

  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42u);

  telemetry::Gauge* g = reg.GetGauge("redy.test.inflight");
  g->Set(5);
  g->Sub(2);
  EXPECT_EQ(g->Value(), 3);

  const std::string json = reg.ToJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"redy.test.ops\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"1\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);

  const std::string table = reg.ToTable();
  EXPECT_NE(table.find("redy.test.ops"), std::string::npos);
  EXPECT_NE(table.find("redy.test.inflight"), std::string::npos);

  // Snapshots are deterministic (registration order, no timestamps
  // beyond sim-now, which has not advanced).
  EXPECT_EQ(json, reg.ToJson());
}

TEST(MetricsRegistryTest, KindMismatchIsFatal) {
  sim::Simulation sim;
  MetricsRegistry reg(&sim);
  reg.GetCounter("redy.test.metric");
  EXPECT_DEATH(reg.GetGauge("redy.test.metric"), "");
}

TEST(WindowedHistogramTest, RotationAcrossWindowBoundaries) {
  sim::Simulation sim;
  WindowedHistogram h(&sim, 1000);  // 1 us windows

  h.Add(100);
  h.Add(200);
  EXPECT_EQ(h.current_window().count(), 2u);
  EXPECT_EQ(h.last_window().count(), 0u);
  EXPECT_EQ(h.cumulative().count(), 2u);

  // Cross into the next window: the in-progress window becomes the
  // last completed one.
  sim.At(1500, [] {});
  while (sim.Step()) {
  }
  ASSERT_EQ(sim.Now(), 1500u);
  h.Add(300);
  EXPECT_EQ(h.current_window().count(), 1u);
  EXPECT_EQ(h.last_window().count(), 2u);
  EXPECT_EQ(h.cumulative().count(), 3u);

  // Skip several windows: the last completed window is empty (nothing
  // was recorded in the window immediately before now).
  sim.At(5200, [] {});
  while (sim.Step()) {
  }
  EXPECT_EQ(h.last_window().count(), 0u);
  EXPECT_EQ(h.current_window().count(), 0u);
  EXPECT_EQ(h.cumulative().count(), 3u);

  h.Reset();
  EXPECT_EQ(h.cumulative().count(), 0u);
}

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST(SpanTracerTest, SpansNestAndCarryParentLinks) {
  sim::Simulation sim;
  SpanTracer tracer(&sim);
  tracer.Enable();
  const telemetry::TrackId track = tracer.NewTrack("client", "worker 0");

  sim.At(100, [&] {
    const telemetry::SpanId outer =
        tracer.BeginSpan(track, "op", "test");
    sim.At(150, [&, outer] {
      const telemetry::SpanId inner =
          tracer.BeginSpan(track, "sub_op", "test", outer);
      sim.At(180, [&, outer, inner] {
        tracer.EndSpan(track, "sub_op", "test", inner);
        tracer.EndSpan(track, "op", "test", outer);
      });
    });
  });
  while (sim.Step()) {
  }

  EXPECT_EQ(tracer.recorded_events(), 4u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  const std::string json = tracer.ExportJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  EXPECT_NE(json.find("\"name\":\"op\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sub_op\""), std::string::npos);
  // The child's begin event links to its parent span id.
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
  // Begin/end phases for nestable async events, µs timestamps from ns.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.100"), std::string::npos);
}

TEST(SpanTracerTest, RingOverwritesOldestAndCountsDrops) {
  sim::Simulation sim;
  SpanTracer::Options opts;
  opts.ring_capacity = 16;
  SpanTracer tracer(&sim, opts);
  tracer.Enable();
  const telemetry::TrackId track = tracer.NewTrack("client", "hot");
  for (uint64_t i = 0; i < 100; i++) {
    tracer.Instant(track, "tick", "test", i, {"i", i});
  }
  EXPECT_EQ(tracer.recorded_events(), 100u);
  EXPECT_EQ(tracer.dropped_events(), 84u);
  const std::string json = tracer.ExportJson();
  EXPECT_TRUE(JsonValidator(json).Valid()) << json;
  // Only the newest events survive.
  EXPECT_EQ(json.find("\"i\":83"), std::string::npos);
  EXPECT_NE(json.find("\"i\":99"), std::string::npos);
}

TEST(SpanTracerTest, DisabledTracerRecordsNothing) {
  sim::Simulation sim;
  SpanTracer tracer(&sim);
  const telemetry::TrackId track = tracer.NewTrack("client", "idle");
  EXPECT_EQ(tracer.BeginSpan(track, "op", "test"), 0u);
  tracer.Instant(track, "tick", "test", 5);
  tracer.AsyncBegin(track, "op", "test", 1, 5);
  tracer.AsyncEnd(track, "op", "test", 1, 9);
  EXPECT_EQ(tracer.recorded_events(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented storm workload. Deterministic across runs,
// valid JSON, and the acceptance-spec span families are present.
// ---------------------------------------------------------------------------

struct StormArtifacts {
  std::string trace;
  std::string metrics;
};

StormArtifacts RunInstrumentedStorm() {
  TestbedOptions o;
  o.pods = 2;
  o.racks_per_pod = 2;
  o.servers_per_rack = 8;
  o.client.region_bytes = 2 * kMiB;
  o.client.max_regions_per_vm = 1;
  o.reclaim_notice = 3 * kMillisecond;
  Testbed tb(o);
  tb.telemetry().tracer().Enable();

  const uint64_t cap = 4 * o.client.region_bytes;
  auto id_or = tb.client().CreateWithConfig(cap, RdmaConfig{1, 0, 1, 8}, 64,
                                            /*spot=*/true);
  REDY_CHECK(id_or.ok());
  std::vector<uint8_t> data(cap);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(SplitMix64(i) >> 3);
  }
  REDY_CHECK(tb.client().Poke(*id_or, 0, data.data(), data.size()).ok());

  chaos::ReclamationStorm::Options sopts;
  sopts.seed = 42;
  sopts.start = tb.sim().Now() + 100 * kMicrosecond;
  sopts.stagger = 500 * kMicrosecond;
  for (uint32_t r = 0; r < 2; r++) {
    auto vm = tb.client().RegionVm(*id_or, r);
    REDY_CHECK(vm.ok());
    sopts.victims.push_back(*vm);
  }
  chaos::ReclamationStorm storm(&tb.sim(), &tb.allocator(), sopts);
  storm.set_telemetry(&tb.telemetry());

  chaos::FaultInjector* inj = tb.EnableChaos({});
  inj->AddDegrade(tb.app_node(), 1, sopts.start, 1 * kMillisecond,
                  2 * kMicrosecond);
  inj->AddStall(3, sopts.start, 500 * kMicrosecond);
  storm.Arm();

  for (int i = 0; i < 50'000'000; i++) {
    if (storm.reclaims_issued() == 2 &&
        tb.sim().Now() > storm.last_deadline() &&
        tb.client().PendingRecoveries() == 0) {
      break;
    }
    if (!tb.sim().Step()) break;
  }
  return {tb.telemetry().tracer().ExportJson(),
          tb.telemetry().metrics().ToJson()};
}

TEST(TelemetryEndToEndTest, StormTraceIsValidAndDeterministic) {
  const StormArtifacts a = RunInstrumentedStorm();
  const StormArtifacts b = RunInstrumentedStorm();
  // Identically seeded runs export byte-identical artifacts.
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics, b.metrics);

  EXPECT_TRUE(JsonValidator(a.trace).Valid());
  EXPECT_TRUE(JsonValidator(a.metrics).Valid());

  // The span families the trace must contain: QP-level WQE lifecycle,
  // migration job spans, and fault/storm window events.
  EXPECT_NE(a.trace.find("\"cat\":\"wqe\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"name\":\"doorbell\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"name\":\"migration_job\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"cat\":\"fault\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"name\":\"reclaim_notice\""), std::string::npos);
  EXPECT_NE(a.trace.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Metrics registry captured rdma + recovery counters.
  EXPECT_NE(a.metrics.find("rdma.wqe_posted"), std::string::npos);
  EXPECT_NE(a.metrics.find("redy.recovery.pending"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ResetStats vs concurrent background increments (the regression the
// registry migration fixes): resetting one cache's view must not lose
// increments racing in from recovery pollers, must not disturb the
// lifetime registry counters, and the Stats pointer stays stable.
// ---------------------------------------------------------------------------

TEST(TelemetryStatsTest, ResetStatsRebasesWithoutLosingIncrements) {
  Testbed tb;
  auto id_or = tb.client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 8},
                                            64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  auto write_batch = [&](int n) {
    int done = 0;
    std::vector<uint8_t> buf(64, 0xAB);
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(tb.client()
                      .Write(id, static_cast<uint64_t>(i) * 64, buf.data(),
                             buf.size(), [&](Status st) {
                               ASSERT_TRUE(st.ok());
                               done++;
                             })
                      .ok());
    }
    while (done < n && tb.sim().Step()) {
    }
    ASSERT_EQ(done, n);
  };

  write_batch(10);
  CacheClient::Stats* stats = tb.client().stats(id);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->writes_completed, 10u);
  EXPECT_EQ(stats->write_latency_ns.count(), 10u);

  // The registry counter is the lifetime truth behind the view.
  telemetry::Counter* lifetime = tb.telemetry().metrics().GetCounter(
      "redy.client.writes_completed", {{"cache", std::to_string(id)}});
  EXPECT_EQ(lifetime->Value(), 10u);

  tb.client().ResetStats(id);
  // Same pointer, zeroed view, untouched lifetime counter.
  EXPECT_EQ(tb.client().stats(id), stats);
  EXPECT_EQ(stats->writes_completed, 0u);
  EXPECT_EQ(stats->write_latency_ns.count(), 0u);
  EXPECT_EQ(lifetime->Value(), 10u);

  // Increments that land after (or race with) the reset are all
  // visible in the re-based view — none are wiped.
  write_batch(5);
  ASSERT_EQ(tb.client().stats(id), stats);
  EXPECT_EQ(stats->writes_completed, 5u);
  EXPECT_EQ(stats->write_latency_ns.count(), 5u);
  EXPECT_EQ(lifetime->Value(), 15u);
}

// ---------------------------------------------------------------------------
// Overhead guard: with tracing disabled, the telemetry primitives on
// the hot path allocate nothing, and a warm Read batch has a stable
// allocation profile (no per-op telemetry allocations sneaking in).
// ---------------------------------------------------------------------------

TEST(TelemetryOverheadTest, DisabledTracingAllocatesNothingPerOp) {
  sim::Simulation sim;
  telemetry::Telemetry tel(&sim);
  telemetry::Counter* c = tel.metrics().GetCounter("redy.test.hot");
  telemetry::WindowedHistogram* h =
      tel.metrics().GetHistogram("redy.test.lat");
  const telemetry::TrackId track = tel.tracer().NewTrack("client", "hot");

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; i++) {
    c->Inc();
    h->Add(100);
    tel.tracer().Instant(track, "tick", "test", 0);
    tel.tracer().AsyncBegin(track, "op", "test", 1, 0);
    tel.tracer().AsyncEnd(track, "op", "test", 1, 0);
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST(TelemetryOverheadTest, WarmReadBatchSteadyStateAllocations) {
  Testbed tb;
  auto id_or = tb.client().CreateWithConfig(8 * kMiB, RdmaConfig{1, 0, 1, 8},
                                            64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  std::vector<uint8_t> buf(64);
  auto read_batch = [&]() -> uint64_t {
    const uint64_t before = g_allocations.load(std::memory_order_relaxed);
    int done = 0;
    for (int i = 0; i < 64; i++) {
      Status st = tb.client().Read(id, static_cast<uint64_t>(i) * 64,
                                   buf.data(), buf.size(),
                                   [&](Status) { done++; });
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    while (done < 64 && tb.sim().Step()) {
    }
    return g_allocations.load(std::memory_order_relaxed) - before;
  };

  // Warm up rings, connections, and per-thread state; then identical
  // batches must have identical allocation counts — tracing is
  // disabled, so the telemetry layer contributes zero per-op
  // allocations and nothing accumulates.
  (void)read_batch();
  (void)read_batch();
  const uint64_t batch_a = read_batch();
  const uint64_t batch_b = read_batch();
  EXPECT_EQ(batch_a, batch_b);
}

// ---------------------------------------------------------------------------
// Thread-safety hammer (real-transport backend, DESIGN.md §13): the
// registry must take registrations, hot-path updates, and snapshot
// exports from real threads concurrently — the socket backend runs
// epoll workers and exporters beside the application loop. CI runs this
// under TSan.
TEST(MetricsRegistryThreads, ConcurrentRegisterUpdateAndExport) {
  sim::Simulation sim;
  telemetry::MetricsRegistry reg(&sim);
  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 4000;

  std::atomic<bool> go{false};
  std::vector<std::thread> updaters;
  for (int t = 0; t < kThreads; t++) {
    updaters.emplace_back([&reg, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      // Same-identity registrations race on purpose: every thread must
      // come back with the same fully built metric objects.
      telemetry::Counter* shared = reg.GetCounter("hammer.shared");
      telemetry::Counter* mine =
          reg.GetCounter("hammer.private", {{"t", std::to_string(t)}});
      telemetry::Gauge* gauge = reg.GetGauge("hammer.gauge");
      telemetry::WindowedHistogram* hist = reg.GetHistogram("hammer.latency");
      for (uint64_t i = 0; i < kOpsPerThread; i++) {
        shared->Inc();
        mine->Inc();
        gauge->Add(1);
        gauge->Sub(1);
        hist->Add(100 + i % 1000);
        if (i % 64 == 0) {
          // Keep registrations churning against the exporter walk.
          reg.GetCounter("hammer.churn",
                         {{"i", std::to_string(i % 8)}})
              ->Inc();
        }
      }
    });
  }

  std::atomic<bool> stop{false};
  std::thread exporter([&reg, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_FALSE(reg.ToJson().empty());
      EXPECT_FALSE(reg.ToTable().empty());
      (void)reg.size();
    }
  });

  go.store(true, std::memory_order_release);
  for (auto& th : updaters) th.join();
  stop.store(true, std::memory_order_release);
  exporter.join();

  EXPECT_EQ(reg.GetCounter("hammer.shared")->Value(),
            kThreads * kOpsPerThread);
  EXPECT_EQ(reg.GetGauge("hammer.gauge")->Value(), 0);
  EXPECT_EQ(reg.GetHistogram("hammer.latency")->SnapshotCumulative().count(),
            kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; t++) {
    EXPECT_EQ(
        reg.GetCounter("hammer.private", {{"t", std::to_string(t)}})->Value(),
        kOpsPerThread);
  }
}

}  // namespace
}  // namespace redy
