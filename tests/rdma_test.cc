#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/units.h"
#include "net/topology.h"
#include "rdma/nic.h"
#include "rdma/queue_pair.h"
#include "redy/cache_server.h"
#include "sim/simulation.h"

namespace redy {
namespace {

using rdma::Fabric;
using rdma::MemoryRegion;
using rdma::Nic;
using rdma::Opcode;
using rdma::QueuePair;
using rdma::WorkCompletion;

class RdmaTest : public ::testing::Test {
 protected:
  RdmaTest()
      : fabric_(&sim_, net::Topology(/*pods=*/2, /*racks=*/2, /*servers=*/4)) {
    client_nic_ = fabric_.NicAt(0);
    server_nic_ = fabric_.NicAt(1);  // same rack: 1 switch
    cqp_ = client_nic_->CreateQueuePair(16);
    sqp_ = server_nic_->CreateQueuePair(16);
    EXPECT_TRUE(cqp_->Connect(sqp_).ok());
  }

  // Drains the sim and returns all completions from cqp_'s send CQ.
  std::vector<WorkCompletion> Drain() {
    sim_.Run();
    std::vector<WorkCompletion> out;
    WorkCompletion wc;
    while (cqp_->send_cq().Poll(&wc, 1) == 1) out.push_back(wc);
    return out;
  }

  sim::Simulation sim_;
  Fabric fabric_;
  Nic* client_nic_;
  Nic* server_nic_;
  QueuePair* cqp_;
  QueuePair* sqp_;
};

TEST_F(RdmaTest, OneSidedWriteMovesBytes) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);

  const char msg[] = "hello remote memory";
  std::memcpy(local->data() + 100, msg, sizeof(msg));
  ASSERT_TRUE(cqp_->PostWrite(7, local, 100, remote->remote_key(), 200,
                              sizeof(msg))
                  .ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].wr_id, 7u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(wcs[0].opcode, Opcode::kWrite);
  EXPECT_EQ(std::memcmp(remote->data() + 200, msg, sizeof(msg)), 0);
}

TEST_F(RdmaTest, OneSidedReadMovesBytes) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);

  const char msg[] = "data on the server";
  std::memcpy(remote->data() + 64, msg, sizeof(msg));
  ASSERT_TRUE(
      cqp_->PostRead(9, local, 0, remote->remote_key(), 64, sizeof(msg)).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local->data(), msg, sizeof(msg)), 0);
}

TEST_F(RdmaTest, SmallOpLatencyIsAFewMicroseconds) {
  // The fabric is calibrated to the paper's testbed: one-sided small ops
  // land at roughly 3-5us overall (Section 7.2, Fig. 11).
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);

  ASSERT_TRUE(cqp_->PostWrite(1, local, 0, remote->remote_key(), 0, 8).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  const double us = ToMicros(wcs[0].completed_at);
  EXPECT_GT(us, 1.0);
  EXPECT_LT(us, 6.0);
}

TEST_F(RdmaTest, InlineWriteIsFasterThanNonInline) {
  MemoryRegion* local = client_nic_->RegisterMemory(64 * kKiB);
  MemoryRegion* remote = server_nic_->RegisterMemory(64 * kKiB);
  const uint32_t threshold = fabric_.params().inline_threshold_bytes;

  ASSERT_TRUE(
      cqp_->PostWrite(1, local, 0, remote->remote_key(), 0, threshold).ok());
  auto wcs1 = Drain();
  ASSERT_EQ(wcs1.size(), 1u);
  const sim::SimTime t_inline = wcs1[0].completed_at;

  sim::Simulation sim2;
  Fabric fabric2(&sim2, net::Topology(2, 2, 4));
  Nic* cn = fabric2.NicAt(0);
  Nic* sn = fabric2.NicAt(1);
  QueuePair* cq = cn->CreateQueuePair(16);
  QueuePair* sq = sn->CreateQueuePair(16);
  ASSERT_TRUE(cq->Connect(sq).ok());
  MemoryRegion* l2 = cn->RegisterMemory(64 * kKiB);
  MemoryRegion* r2 = sn->RegisterMemory(64 * kKiB);
  ASSERT_TRUE(
      cq->PostWrite(1, l2, 0, r2->remote_key(), 0, threshold + 1).ok());
  sim2.Run();
  WorkCompletion wc;
  ASSERT_EQ(cq->send_cq().Poll(&wc, 1), 1);
  // The non-inline write pays the PCIe fetch.
  EXPECT_GT(wc.completed_at, t_inline);
  EXPECT_GE(wc.completed_at - t_inline, fabric2.params().pcie_fetch_ns / 2);
}

TEST_F(RdmaTest, ReadLatencyGrowsWithDistance) {
  // Servers 0 and 1 share a rack (1 hop); server 0 and the last server
  // are in different pods (5 hops).
  sim::Simulation sim2;
  Fabric fabric2(&sim2, net::Topology(2, 2, 4));
  Nic* cn = fabric2.NicAt(0);
  Nic* far = fabric2.NicAt(15);
  ASSERT_EQ(fabric2.SwitchHops(0, 1), 1);
  ASSERT_EQ(fabric2.SwitchHops(0, 15), 5);
  QueuePair* cq = cn->CreateQueuePair(16);
  QueuePair* fq = far->CreateQueuePair(16);
  ASSERT_TRUE(cq->Connect(fq).ok());
  MemoryRegion* l2 = cn->RegisterMemory(4096);
  MemoryRegion* r2 = far->RegisterMemory(4096);
  ASSERT_TRUE(cq->PostRead(1, l2, 0, r2->remote_key(), 0, 8).ok());
  sim2.Run();
  WorkCompletion far_wc;
  ASSERT_EQ(cq->send_cq().Poll(&far_wc, 1), 1);

  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  ASSERT_TRUE(
      cqp_->PostRead(1, local, 0, remote->remote_key(), 0, 8).ok());
  auto near_wcs = Drain();
  ASSERT_EQ(near_wcs.size(), 1u);
  // 4 extra switch crossings each way.
  EXPECT_GT(far_wc.completed_at, near_wcs[0].completed_at);
}

TEST_F(RdmaTest, QueueDepthIsEnforced) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  QueuePair* qp4 = client_nic_->CreateQueuePair(4);
  QueuePair* sqp4 = server_nic_->CreateQueuePair(4);
  ASSERT_TRUE(qp4->Connect(sqp4).ok());

  int accepted = 0;
  for (int i = 0; i < 10; i++) {
    if (qp4->PostWrite(i, local, 0, remote->remote_key(), 0, 8).ok()) {
      accepted++;
    }
  }
  EXPECT_EQ(accepted, 4);
  sim_.Run();
  // After completion, the depth frees up.
  EXPECT_TRUE(qp4->PostWrite(99, local, 0, remote->remote_key(), 0, 8).ok());
}

TEST_F(RdmaTest, CompletionsArriveInPostOrder) {
  MemoryRegion* local = client_nic_->RegisterMemory(64 * kKiB);
  MemoryRegion* remote = server_nic_->RegisterMemory(64 * kKiB);
  // Mix large and small ops; completions must still be FIFO per QP.
  ASSERT_TRUE(
      cqp_->PostWrite(1, local, 0, remote->remote_key(), 0, 16 * kKiB).ok());
  ASSERT_TRUE(cqp_->PostWrite(2, local, 0, remote->remote_key(), 0, 8).ok());
  ASSERT_TRUE(
      cqp_->PostRead(3, local, 0, remote->remote_key(), 0, 8 * kKiB).ok());
  ASSERT_TRUE(cqp_->PostWrite(4, local, 0, remote->remote_key(), 0, 8).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 4u);
  for (size_t i = 0; i < wcs.size(); i++) {
    EXPECT_EQ(wcs[i].wr_id, i + 1);
  }
  for (size_t i = 1; i < wcs.size(); i++) {
    EXPECT_GE(wcs[i].completed_at, wcs[i - 1].completed_at);
  }
}

TEST_F(RdmaTest, RemoteAccessToInvalidRegionFails) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  rdma::RemoteKey key = remote->remote_key();
  server_nic_->DeregisterMemory(remote);
  ASSERT_TRUE(cqp_->PostWrite(1, local, 0, key, 0, 8).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
}

TEST_F(RdmaTest, DeregisterWhileWriteInFlightNeverTouchesBytes) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  const rdma::RemoteKey key = remote->remote_key();
  std::memset(remote->data(), 0xAB, 64);

  std::memset(local->data(), 0xCD, 64);
  ASSERT_TRUE(cqp_->PostWrite(1, local, 0, key, 0, 64).ok());
  // Deregister while the WQE is in flight. The region's storage stays
  // alive through the NIC's retirement grace period, so the old bytes
  // remain observable — and must remain untouched.
  server_nic_->DeregisterMemory(remote);

  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  for (int i = 0; i < 64; i++) {
    ASSERT_EQ(remote->data()[i], 0xAB) << "freed byte " << i << " mutated";
  }
}

TEST_F(RdmaTest, StaleEpochWriteIsFencedFreshKeySucceeds) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  const rdma::RemoteKey stale = remote->remote_key();
  std::memset(remote->data(), 0, 16);

  remote->RevokeEpoch();
  std::memset(local->data(), 0x5A, 16);
  ASSERT_TRUE(cqp_->PostWrite(1, local, 0, stale, 0, 16).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  for (int i = 0; i < 16; i++) {
    ASSERT_EQ(remote->data()[i], 0) << "fenced write landed at byte " << i;
  }

  // A key minted after the revocation carries the new epoch and works.
  ASSERT_TRUE(
      cqp_->PostWrite(2, local, 0, remote->remote_key(), 0, 16).ok());
  wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(remote->data()[0], 0x5A);
}

TEST_F(RdmaTest, ReadsSurviveEpochRevocation) {
  // A revoked region is write-frozen but stays readable until
  // deregistration: migration chunk copies and unpaused reads keep
  // flowing through the cutover.
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  const char msg[] = "still readable";
  std::memcpy(remote->data(), msg, sizeof(msg));
  const rdma::RemoteKey stale = remote->remote_key();
  remote->RevokeEpoch();

  ASSERT_TRUE(cqp_->PostRead(1, local, 0, stale, 0, sizeof(msg)).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(local->data(), msg, sizeof(msg)), 0);
}

TEST_F(RdmaTest, RemoteOutOfBoundsFails) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(128);
  ASSERT_TRUE(
      cqp_->PostWrite(1, local, 0, remote->remote_key(), 120, 64).ok());
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kAborted);
}

TEST_F(RdmaTest, NicFailureFlushesInFlightOps) {
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(
        cqp_->PostWrite(i, local, 0, remote->remote_key(), 0, 8).ok());
  }
  server_nic_->Fail();
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 4u);
  for (const auto& wc : wcs) {
    EXPECT_EQ(wc.status, StatusCode::kUnavailable);
  }
  // New posts on a broken QP are rejected synchronously.
  EXPECT_FALSE(cqp_->PostWrite(9, local, 0, remote->remote_key(), 0, 8).ok());
}

TEST_F(RdmaTest, ServerShutdownFencesInFlightWrites) {
  // CacheServer::Shutdown deregisters every region it serves. A write
  // already in flight against one of them must complete with
  // kProtectionError and leave the (retired, still-observable) bytes
  // untouched.
  cluster::Vm vm;
  vm.id = 1;
  vm.server = 1;
  vm.memory_bytes = 64 * kMiB;
  redy::CacheServer server(&sim_, &fabric_, vm, redy::CostModel{});
  auto keys_or = server.AllocateRegions(1, 4096);
  ASSERT_TRUE(keys_or.ok());
  rdma::MemoryRegion* region = server.region(0);
  ASSERT_NE(region, nullptr);
  std::memset(region->data(), 0x11, 32);

  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  std::memset(local->data(), 0x22, 32);
  ASSERT_TRUE(cqp_->PostWrite(5, local, 0, (*keys_or)[0], 0, 32).ok());
  server.Shutdown();

  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].status, StatusCode::kProtectionError);
  for (int i = 0; i < 32; i++) {
    ASSERT_EQ(region->data()[i], 0x11) << "freed byte " << i << " mutated";
  }
}

TEST_F(RdmaTest, SendRecvDeliversToPostedBuffer) {
  MemoryRegion* src = client_nic_->RegisterMemory(4096);
  MemoryRegion* dst = server_nic_->RegisterMemory(4096);
  const char msg[] = "rpc payload";
  std::memcpy(src->data(), msg, sizeof(msg));
  ASSERT_TRUE(sqp_->PostRecv(42, dst, 0, 4096).ok());
  ASSERT_TRUE(cqp_->PostSend(7, src, 0, sizeof(msg)).ok());
  sim_.Run();
  WorkCompletion rwc;
  ASSERT_EQ(sqp_->recv_cq().Poll(&rwc, 1), 1);
  EXPECT_EQ(rwc.wr_id, 42u);
  EXPECT_EQ(rwc.status, StatusCode::kOk);
  EXPECT_EQ(std::memcmp(dst->data(), msg, sizeof(msg)), 0);
}

TEST_F(RdmaTest, PipeliningImprovesThroughput) {
  // Queue depth q ops overlap the round trip: q=8 must finish ~8 ops in
  // scarcely more than one RTT, not 8 RTTs (fully-loaded QPs, Section 4.3).
  MemoryRegion* local = client_nic_->RegisterMemory(4096);
  MemoryRegion* remote = server_nic_->RegisterMemory(4096);

  ASSERT_TRUE(cqp_->PostWrite(0, local, 0, remote->remote_key(), 0, 8).ok());
  auto first = Drain();
  ASSERT_EQ(first.size(), 1u);
  const sim::SimTime one_rtt = first[0].completed_at;

  const sim::SimTime start = sim_.Now();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(
        cqp_->PostWrite(i, local, 0, remote->remote_key(), 0, 8).ok());
  }
  auto wcs = Drain();
  ASSERT_EQ(wcs.size(), 8u);
  const sim::SimTime batch_time = wcs.back().completed_at - start;
  EXPECT_LT(batch_time, 3 * one_rtt);
}

}  // namespace
}  // namespace redy
