#include <gtest/gtest.h>

#include <vector>

#include "sim/poller.h"
#include "sim/simulation.h"

namespace redy {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300u);
}

TEST(SimulationTest, SameTimeEventsAreFifo) {
  sim::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, NestedSchedulingWorks) {
  sim::Simulation sim;
  int fired = 0;
  sim.At(10, [&] {
    fired++;
    sim.After(5, [&] {
      fired++;
      EXPECT_EQ(sim.Now(), 15u);
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, PastEventsClampToNow) {
  sim::Simulation sim;
  sim.At(100, [] {});
  sim.Run();
  bool ran = false;
  sim.At(50, [&] {
    ran = true;
  });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  sim::Simulation sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(20, [&] { fired++; });
  sim.At(30, [&] { fired++; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20u);
  sim.RunUntil(25);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 25u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, CancelPreventsExecution) {
  sim::Simulation sim;
  bool ran = false;
  uint64_t id = sim.At(10, [&] { ran = true; });
  bool other = false;
  sim.At(20, [&] { other = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(other);
}

TEST(SimulationTest, CancelledHeadDoesNotLetLaterEventsJumpRunUntil) {
  sim::Simulation sim;
  bool late_ran = false;
  uint64_t id = sim.At(10, [] {});
  sim.At(100, [&] { late_ran = true; });
  sim.Cancel(id);
  sim.RunUntil(50);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(PollerTest, PollsAtInterval) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls++;
    return 0;
  });
  poller.Start();
  sim.RunUntil(1000);
  poller.Stop();
  // t=0,100,...,1000 inclusive.
  EXPECT_EQ(polls, 11);
}

TEST(PollerTest, BusyIterationsDelayNextPoll) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls++;
    return 500;  // each iteration consumes 500ns
  });
  poller.Start();
  sim.RunUntil(2000);
  poller.Stop();
  EXPECT_EQ(polls, 5);  // t=0,500,1000,1500,2000
}

TEST(PollerTest, StopFromInsideBody) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 10, [&]() -> uint64_t {
    polls++;
    if (polls == 3) poller.Stop();
    return 0;
  });
  poller.Start();
  sim.Run();
  EXPECT_EQ(polls, 3);
}

}  // namespace
}  // namespace redy
