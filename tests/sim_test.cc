#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "sim/inline_function.h"
#include "sim/poller.h"
#include "sim/sharded.h"
#include "sim/simulation.h"

namespace redy {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  sim::Simulation sim;
  std::vector<int> order;
  sim.At(300, [&] { order.push_back(3); });
  sim.At(100, [&] { order.push_back(1); });
  sim.At(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300u);
}

TEST(SimulationTest, SameTimeEventsAreFifo) {
  sim::Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.At(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, NestedSchedulingWorks) {
  sim::Simulation sim;
  int fired = 0;
  sim.At(10, [&] {
    fired++;
    sim.After(5, [&] {
      fired++;
      EXPECT_EQ(sim.Now(), 15u);
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, PastEventsClampToNow) {
  sim::Simulation sim;
  sim.At(100, [] {});
  sim.Run();
  bool ran = false;
  sim.At(50, [&] {
    ran = true;
  });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  sim::Simulation sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(20, [&] { fired++; });
  sim.At(30, [&] { fired++; });
  sim.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 20u);
  sim.RunUntil(25);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 25u);
  sim.Run();
  EXPECT_EQ(fired, 3);
}

TEST(SimulationTest, CancelPreventsExecution) {
  sim::Simulation sim;
  bool ran = false;
  uint64_t id = sim.At(10, [&] { ran = true; });
  bool other = false;
  sim.At(20, [&] { other = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(other);
}

TEST(SimulationTest, CancelledHeadDoesNotLetLaterEventsJumpRunUntil) {
  sim::Simulation sim;
  bool late_ran = false;
  uint64_t id = sim.At(10, [] {});
  sim.At(100, [&] { late_ran = true; });
  sim.Cancel(id);
  sim.RunUntil(50);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimulationTest, DoubleCancelReturnsFalseAndKeepsAccounting) {
  sim::Simulation sim;
  bool ran = false;
  uint64_t id = sim.At(10, [&] { ran = true; });
  sim.At(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.pending(), 1u);
  // Historically a second Cancel of the same handle inflated the
  // cancelled-event count and broke empty(); it must be a no-op.
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(sim.empty());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulationTest, CancelAfterFireReturnsFalse) {
  sim::Simulation sim;
  int fired = 0;
  uint64_t id = sim.At(10, [&] { fired++; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Cancel(id));
  // The stale cancel must not disturb later scheduling.
  sim.At(20, [&] { fired++; });
  EXPECT_FALSE(sim.empty());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, CancelFromInsideCallback) {
  sim::Simulation sim;
  bool victim_ran = false;
  uint64_t victim = sim.At(20, [&] { victim_ran = true; });
  bool cancelled = false;
  sim.At(10, [&] { cancelled = sim.Cancel(victim); });
  sim.Run();
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, StaleHandleOfReusedSlotIsRejected) {
  sim::Simulation sim;
  // Cancel an event, then schedule another: whether or not the pool
  // has recycled the cancelled slot yet, the old handle must stay dead
  // (disengaged callback until the lazy discard, generation tag after).
  uint64_t old_id = sim.At(10, [] {});
  ASSERT_TRUE(sim.Cancel(old_id));
  bool ran = false;
  uint64_t new_id = sim.At(20, [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  // Cancelling via the stale handle must not kill the new event.
  EXPECT_FALSE(sim.Cancel(old_id));
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, CallbackCanReuseItsOwnSlot) {
  sim::Simulation sim;
  // The running event's slot returns to the pool only after its
  // callback finishes (the callable runs in place), so a callback
  // that schedules gets a different slot; ordering must hold and the
  // original slot must recycle cleanly afterwards.
  std::vector<int> order;
  sim.At(10, [&] {
    order.push_back(1);
    sim.After(5, [&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulationTest, RandomizedScheduleCancelMatchesReferenceModel) {
  // Differential test of the pooled 4-ary heap against a trivially
  // correct reference: random interleaving of schedules, cancels
  // (fresh, stale, double) and steps must fire the same events in the
  // same (time, seq) order.
  sim::Simulation sim;
  std::mt19937 rng(12345);
  std::multimap<std::pair<uint64_t, uint64_t>, int> reference;
  std::vector<std::pair<uint64_t, uint64_t>> live;  // (handle, key-seq)
  std::vector<uint64_t> dead_handles;
  std::vector<int> fired;
  std::vector<int> expected;
  uint64_t seq = 0;
  int next_tag = 0;

  for (int step = 0; step < 20'000; step++) {
    const uint32_t roll = rng() % 100;
    if (roll < 55) {
      const uint64_t t = sim.Now() + rng() % 500;
      const int tag = next_tag++;
      const uint64_t s = seq++;
      uint64_t h = sim.At(t, [&fired, tag] { fired.push_back(tag); });
      reference.emplace(std::make_pair(std::max(t, sim.Now()), s), tag);
      live.emplace_back(h, s);
    } else if (roll < 70 && !live.empty()) {
      const size_t i = rng() % live.size();
      auto [h, s] = live[i];
      EXPECT_TRUE(sim.Cancel(h));
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->first.second == s) {
          reference.erase(it);
          break;
        }
      }
      live.erase(live.begin() + i);
      dead_handles.push_back(h);
    } else if (roll < 80 && !dead_handles.empty()) {
      EXPECT_FALSE(sim.Cancel(dead_handles[rng() % dead_handles.size()]));
    } else {
      if (sim.Step()) {
        ASSERT_FALSE(reference.empty());
        auto it = reference.begin();
        expected.push_back(it->second);
        const uint64_t s = it->first.second;
        reference.erase(it);
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [s](auto& p) { return p.second == s; }),
                   live.end());
      }
    }
    ASSERT_EQ(sim.pending(), reference.size());
  }
  sim.Run();
  for (const auto& [key, tag] : reference) expected.push_back(tag);
  EXPECT_EQ(fired, expected);
}

TEST(InlineFunctionTest, InvokesInlineCallable) {
  int hits = 0;
  auto small = [&hits] { hits++; };
  static_assert(sim::InlineFunction::fits_inline<decltype(small)>());
  sim::InlineFunction f(small);
  EXPECT_TRUE(static_cast<bool>(f));
  f();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFunctionTest, LargeCaptureFallsBackToHeap) {
  std::array<uint64_t, 32> payload{};
  payload[0] = 7;
  payload[31] = 9;
  auto big = [payload] { EXPECT_EQ(payload[0] + payload[31], 16u); };
  static_assert(!sim::InlineFunction::fits_inline<decltype(big)>());
  sim::InlineFunction f(std::move(big));
  f();
}

TEST(InlineFunctionTest, MoveTransfersStateAndDestroysOnce) {
  struct Probe {
    std::shared_ptr<int> alive = std::make_shared<int>(0);
  };
  Probe probe;
  std::weak_ptr<int> watch = probe.alive;
  {
    sim::InlineFunction a([probe = std::move(probe)] {});
    sim::InlineFunction b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    EXPECT_FALSE(watch.expired());
    sim::InlineFunction c = std::move(b);
    EXPECT_TRUE(static_cast<bool>(c));
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, ResetReleasesCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  sim::InlineFunction f([token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  f.Reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(PollerTest, PollsAtInterval) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls++;
    return 0;
  });
  poller.Start();
  sim.RunUntil(1000);
  poller.Stop();
  // t=0,100,...,1000 inclusive.
  EXPECT_EQ(polls, 11);
}

TEST(PollerTest, BusyIterationsDelayNextPoll) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls++;
    return 500;  // each iteration consumes 500ns
  });
  poller.Start();
  sim.RunUntil(2000);
  poller.Stop();
  EXPECT_EQ(polls, 5);  // t=0,500,1000,1500,2000
}

TEST(PollerTest, StopFromInsideBody) {
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 10, [&]() -> uint64_t {
    polls++;
    if (polls == 3) poller.Stop();
    return 0;
  });
  poller.Start();
  sim.Run();
  EXPECT_EQ(polls, 3);
}

TEST(PollerTest, RestartAfterStopResumesPolling) {
  sim::Simulation sim;
  std::vector<sim::SimTime> polls;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls.push_back(sim.Now());
    return 0;
  });
  poller.Start();
  sim.RunUntil(250);
  poller.Stop();
  sim.RunUntil(1000);
  EXPECT_EQ(polls, (std::vector<sim::SimTime>{0, 100, 200}));
  poller.Start();
  sim.RunUntil(1250);
  poller.Stop();
  EXPECT_EQ(polls,
            (std::vector<sim::SimTime>{0, 100, 200, 1000, 1100, 1200}));
}

TEST(PollerTest, ParkInsideBodyAndWakeRealignsToTickPhase) {
  sim::Simulation sim;
  std::vector<sim::SimTime> polls;
  bool park_next = false;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls.push_back(sim.Now());
    if (park_next) {
      park_next = false;
      poller.Park();
    }
    return 0;
  });
  poller.Start();
  sim.At(150, [&] { park_next = true; });  // body at t=200 parks
  // Wake off-phase: the next poll must land on the original 100ns
  // cadence (t=300), not at the wake time.
  sim.At(250, [&] { poller.Wake(); });
  sim.RunUntil(400);
  poller.Stop();
  EXPECT_EQ(polls, (std::vector<sim::SimTime>{0, 100, 200, 300, 400}));
}

TEST(PollerTest, ParkOutsideBodyCancelsPendingAndWakeCatchesUp) {
  sim::Simulation sim;
  std::vector<sim::SimTime> polls;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls.push_back(sim.Now());
    return 0;
  });
  poller.Start();
  // Park between ticks: the pending t=300 poll is cancelled. Waking at
  // t=650 realigns to the first original tick >= 650, i.e. t=700.
  sim.At(250, [&] { poller.Park(); });
  sim.At(650, [&] { poller.Wake(); });
  sim.RunUntil(900);
  poller.Stop();
  EXPECT_EQ(polls,
            (std::vector<sim::SimTime>{0, 100, 200, 700, 800, 900}));
  EXPECT_TRUE(sim.empty());  // a parked poller leaves no event behind
}

TEST(PollerTest, WakeInsideBodyAfterParkKeepsSingleSchedule) {
  // A body that parks and is synchronously woken (e.g. its own work
  // source fires re-entrantly) must not double-schedule the next poll.
  sim::Simulation sim;
  int polls = 0;
  sim::Poller poller(&sim, 100, [&]() -> uint64_t {
    polls++;
    poller.Park();
    poller.Wake();
    return 0;
  });
  poller.Start();
  sim.RunUntil(500);
  poller.Stop();
  EXPECT_EQ(polls, 6);  // t=0..500: the park/wake pair is a no-op
  EXPECT_TRUE(sim.empty());
}

TEST(PollerTest, ParkWakeRunsAreDeterministic) {
  // Two same-seed runs of a park/wake-heavy scenario must execute the
  // same events at the same times.
  auto run = [](std::vector<sim::SimTime>* polls) -> uint64_t {
    sim::Simulation sim;
    std::mt19937 rng(99);
    uint32_t idle = 0;
    sim::Poller poller(&sim, 50, [&]() -> uint64_t {
      polls->push_back(sim.Now());
      if (++idle >= 4) poller.Park();
      return 25;
    });
    poller.Start();
    for (int i = 0; i < 50; i++) {
      sim.At(rng() % 100'000, [&] {
        idle = 0;
        poller.Wake();
      });
    }
    sim.RunUntil(100'000);
    poller.Stop();
    return sim.events_executed();
  };
  std::vector<sim::SimTime> a, b;
  const uint64_t ea = run(&a);
  const uint64_t eb = run(&b);
  EXPECT_EQ(ea, eb);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

// ---------------------------------------------------------------------------
// ShardedEngine: conservative parallel execution (DESIGN.md 14)
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, CrossPartitionPostsDeliverAtExactTimes) {
  sim::ShardedEngine::Options opts;
  opts.partitions = 2;
  opts.workers = 2;
  opts.lookahead_ns = 100;
  sim::ShardedEngine eng(opts);

  std::vector<sim::SimTime> delivered;  // partition 1 state
  eng.partition(0).At(50, [&] {
    // Running on partition 0 at t=50; both arrivals respect the
    // lookahead and must run at their exact timestamps, later first
    // to prove time order is restored at the destination.
    eng.Post(0, 1, 400, [&] {
      EXPECT_EQ(eng.partition(1).Now(), 400u);
      delivered.push_back(400);
    });
    eng.Post(0, 1, 150, [&] {
      EXPECT_EQ(eng.partition(1).Now(), 150u);
      delivered.push_back(150);
    });
  });
  eng.RunUntil(1000);
  EXPECT_EQ(delivered, (std::vector<sim::SimTime>{150, 400}));
  EXPECT_EQ(eng.partition(0).Now(), 1000u);
  EXPECT_EQ(eng.partition(1).Now(), 1000u);
  EXPECT_EQ(eng.messages_sent(), 2u);
}

TEST(ShardedEngineTest, SetupTimePostsBypassTheLookahead) {
  sim::ShardedEngine::Options opts;
  opts.partitions = 2;
  opts.lookahead_ns = 1000;
  sim::ShardedEngine eng(opts);
  bool ran = false;
  // The engine is not running: this goes straight onto partition 1's
  // queue even though 5 < lookahead.
  eng.Post(0, 1, 5, [&] { ran = true; });
  eng.RunUntil(10);
  EXPECT_TRUE(ran);
  EXPECT_EQ(eng.messages_sent(), 0u);  // direct schedule, no channel
}

TEST(ShardedEngineTest, ChannelOverflowSpillsInOrder) {
  sim::ShardedEngine::Options opts;
  opts.partitions = 2;
  opts.workers = 2;
  opts.lookahead_ns = 10;
  opts.channel_capacity = 2;  // force the spill path
  sim::ShardedEngine eng(opts);

  std::vector<int> received;
  eng.partition(0).At(1, [&] {
    for (int i = 0; i < 100; i++) {
      // Identical arrival times: delivery must fall back to channel
      // sequence order, including across the ring -> spill boundary.
      eng.Post(0, 1, 500, [&received, i] { received.push_back(i); });
    }
  });
  eng.RunUntil(600);
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; i++) EXPECT_EQ(received[i], i);
  EXPECT_GT(eng.messages_spilled(), 0u);
}

TEST(ShardedEngineTest, RunUntilAdvancesEveryPartitionToTheBound) {
  sim::ShardedEngine::Options opts;
  opts.partitions = 3;
  opts.workers = 2;
  opts.lookahead_ns = 7;
  sim::ShardedEngine eng(opts);
  eng.RunUntil(123);  // no events at all
  for (uint32_t p = 0; p < 3; p++) EXPECT_EQ(eng.partition(p).Now(), 123u);
  eng.partition(1).At(200, [] {});
  eng.RunUntil(500);  // repeated runs with a non-empty partition
  for (uint32_t p = 0; p < 3; p++) EXPECT_EQ(eng.partition(p).Now(), 500u);
  EXPECT_EQ(eng.events_executed(), 1u);
}

/// The determinism regression the parallel engine is built around:
/// a fixed-seed workload of self-rescheduling chains that ping
/// cross-partition messages must produce byte-identical delivery logs
/// (receiver, time, payload) for ANY worker count.
TEST(ShardedEngineTest, SameSeedRunsAreIdenticalAcrossWorkerCounts) {
  constexpr uint32_t kParts = 5;
  constexpr sim::SimTime kLookahead = 50;
  constexpr sim::SimTime kEnd = 200'000;

  auto run = [&](uint32_t workers) {
    sim::ShardedEngine::Options opts;
    opts.partitions = kParts;
    opts.workers = workers;  // clamped to partitions when larger
    opts.lookahead_ns = kLookahead;
    opts.channel_capacity = 4;  // exercise spill under load too
    sim::ShardedEngine eng(opts);

    // One log and one LCG per partition, only ever touched by events
    // running on that partition.
    auto logs = std::make_unique<std::vector<uint64_t>[]>(kParts);
    auto lcgs = std::make_unique<uint64_t[]>(kParts);
    struct Hop {
      sim::ShardedEngine* eng;
      std::vector<uint64_t>* logs_base;
      uint64_t* lcgs;
      uint32_t at;
      uint64_t tag;

      void operator()() const {
        logs_base[at].push_back(eng->partition(at).Now() ^ tag);
        uint64_t& lcg = lcgs[at];
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const uint32_t dst = static_cast<uint32_t>((lcg >> 33) % kParts);
        const sim::SimTime t = eng->partition(at).Now() + kLookahead +
                               ((lcg >> 13) % 400);
        if (t >= kEnd) return;
        eng->Post(at, dst, t, Hop{eng, logs_base, lcgs, dst, lcg >> 7});
      }
    };
    for (uint32_t p = 0; p < kParts; p++) {
      lcgs[p] = 0x9e3779b9u * (p + 1);
      for (int c = 0; c < 8; c++) {
        eng.partition(p).At(p + c + 1,
                            Hop{&eng, logs.get(), lcgs.get(), p, 0});
      }
    }
    eng.RunUntil(kEnd);
    std::vector<uint64_t> flat;
    for (uint32_t p = 0; p < kParts; p++) {
      flat.insert(flat.end(), logs[p].begin(), logs[p].end());
    }
    flat.push_back(eng.events_executed());
    flat.push_back(eng.messages_sent());
    return flat;
  };

  const auto w1 = run(1);
  const auto w2 = run(2);
  const auto w4 = run(4);
  const auto w8 = run(8);  // more workers than partitions: clamped
  EXPECT_GT(w1.size(), 100u);
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(w1, w4);
  EXPECT_EQ(w1, w8);
}

}  // namespace
}  // namespace redy
