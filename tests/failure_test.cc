// Failure-injection tests: servers dying or being reclaimed at
// inconvenient moments must surface errors (never hang, never corrupt)
// and the client must recover (Section 6.2).

#include <gtest/gtest.h>

#include <vector>

#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  static TestbedOptions Opts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    return o;
  }

  FailureTest() : tb_(Opts()) {}

  template <typename Pred>
  bool RunUntil(Pred pred, int max_steps = 5'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb_.sim().Step()) return pred();
    }
    return pred();
  }

  Testbed tb_;
};

TEST_F(FailureTest, NodeDeathMidTrafficFailsOpsThenRecovers) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{2, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());
  const net::ServerId node = tb_.allocator().Find(*vm)->server;

  // Launch a burst of ops, then kill the node while they are in flight.
  char buf[64] = {1, 2, 3};
  int completed = 0, failed = 0;
  for (int i = 0; i < 32; i++) {
    ASSERT_TRUE(tb_.client()
                    .Write(id, i * 64, buf, 64,
                           [&](Status st) {
                             completed++;
                             if (!st.ok()) failed++;
                           },
                           i % 2)
                    .ok());
  }
  // Let the pipeline fill and some ops complete, then kill the node
  // with the rest genuinely in flight.
  ASSERT_TRUE(RunUntil([&] { return completed >= 4; }));
  tb_.FailNode(node);
  // Every op eventually completes, none hangs forever; the ones caught
  // in flight on the dead node fail.
  ASSERT_TRUE(RunUntil([&] { return completed == 32; }));
  EXPECT_GT(failed, 0);

  // Auto-recovery rebuilt the cache on a live node; new I/O works.
  ASSERT_TRUE(RunUntil([&] { return !tb_.client().migrations().empty(); }));
  bool ok_after = false;
  ASSERT_TRUE(tb_.client()
                  .Write(id, 0, buf, 64,
                         [&](Status st) {
                           EXPECT_TRUE(st.ok()) << st.ToString();
                           ok_after = true;
                         })
                  .ok());
  ASSERT_TRUE(RunUntil([&] { return ok_after; }));
}

TEST_F(FailureTest, TwoSidedPathSurvivesServerShutdown) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{2, 1, 8, 4}, 32);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  auto vm = tb_.client().RegionVm(id, 0);
  ASSERT_TRUE(vm.ok());

  char buf[32] = {9};
  int completed = 0;
  for (int i = 0; i < 24; i++) {
    ASSERT_TRUE(tb_.client()
                    .Write(id, i * 32, buf, 32,
                           [&](Status) { completed++; }, i % 2)
                    .ok());
  }
  // Hard-kill the server agent mid-burst (simulates VM deallocation
  // without notice).
  tb_.manager().ServerFor(*vm)->Shutdown();
  ASSERT_TRUE(RunUntil([&] { return completed == 24; }))
      << "ops must complete (possibly with errors), not hang";
}

TEST_F(FailureTest, MultiVmCacheLosesOnlyAffectedRegions) {
  // Force a multi-VM cache deterministically: cap regions per VM at 1,
  // so 3 regions always land on 3 distinct VMs — and size physical
  // servers so the cheapest fitting VM type (D2, 8 GiB) exactly fills
  // one server, putting every VM on its own physical server.
  TestbedOptions o = Opts();
  o.client.region_bytes = 4 * kMiB;
  o.client.max_regions_per_vm = 1;
  o.memory_per_server = 8 * kGiB;
  Testbed tb(o);
  auto id_or = tb.client().CreateWithConfig(12 * kMiB,
                                            RdmaConfig{1, 0, 1, 4}, 64);
  ASSERT_TRUE(id_or.ok()) << id_or.status().ToString();
  const auto id = *id_or;
  auto vm0 = tb.client().RegionVm(id, 0);
  auto vm2 = tb.client().RegionVm(id, 2);
  ASSERT_TRUE(vm0.ok());
  ASSERT_TRUE(vm2.ok());
  ASSERT_NE(*vm0, *vm2) << "cap of 1 region/VM must separate regions";

  // Data in region 2 must survive the loss of region 0's VM.
  const char msg[] = "survivor";
  ASSERT_TRUE(tb.client().Poke(id, 2ull * 4 * kMiB + 64, msg, sizeof(msg))
                  .ok());
  tb.allocator().FailServer(tb.allocator().Find(*vm0)->server);
  for (int i = 0; i < 3'000'000 && tb.client().migrations().empty(); i++) {
    if (!tb.sim().Step()) break;
  }
  char out[16] = {};
  ASSERT_TRUE(tb.client().Peek(id, 2ull * 4 * kMiB + 64, out, sizeof(msg))
                  .ok());
  EXPECT_STREQ(out, msg);
}

TEST_F(FailureTest, DeleteDuringTrafficCompletesAllCallbacks) {
  auto id_or =
      tb_.client().CreateWithConfig(4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;
  char buf[64] = {};
  int completed = 0;
  for (int i = 0; i < 16; i++) {
    ASSERT_TRUE(tb_.client()
                    .Read(id, i * 64, buf, 64,
                          [&](Status) { completed++; })
                    .ok());
  }
  // Delete with ops in flight: completions (as errors) must still be
  // delivered before teardown finishes; the cache id becomes invalid.
  ASSERT_TRUE(tb_.client().Delete(id).ok());
  EXPECT_EQ(completed, 16);  // failed synchronously at teardown
  EXPECT_TRUE(tb_.client().Read(id, 0, buf, 8, [](Status) {}).IsNotFound());
}

}  // namespace
}  // namespace redy
