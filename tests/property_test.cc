// Property-style parameterized sweeps (TEST_P) over the Redy data path
// and the SLO machinery: invariants that must hold for *every*
// configuration, not just the ones other tests happen to pick.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/random.h"
#include "redy/measurement.h"
#include "redy/perf_model.h"
#include "redy/slo_search.h"
#include "redy/testbed.h"

namespace redy {
namespace {

// ---------------------------------------------------------------------------
// Data-path round-trip integrity across configurations.
// ---------------------------------------------------------------------------

class ConfigRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t,
                                                 uint32_t, uint32_t>> {};

TEST_P(ConfigRoundTrip, EveryConfigMovesBytesFaithfully) {
  const auto [c, s, b, q] = GetParam();
  RdmaConfig cfg{c, s, b, q};

  TestbedOptions o;
  o.client.region_bytes = 2 * kMiB;
  Testbed tb(o);
  auto id_or = tb.client().CreateWithConfig(4 * kMiB, cfg, 64);
  ASSERT_TRUE(id_or.ok()) << cfg.ToString() << ": "
                          << id_or.status().ToString();
  const auto id = *id_or;

  // A pseudo-random batch of writes, then read everything back.
  Rng rng(0xF00D ^ (c << 12) ^ (s << 8) ^ (b << 4) ^ q);
  constexpr int kOps = 48;
  std::vector<std::vector<uint8_t>> payloads(kOps);
  std::vector<uint64_t> addrs(kOps);
  int writes_done = 0;
  for (int i = 0; i < kOps; i++) {
    payloads[i].resize(64);
    for (auto& byte : payloads[i]) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    addrs[i] = rng.Uniform(4 * kMiB / 64) * 64;
    ASSERT_TRUE(tb.client()
                    .Write(id, addrs[i], payloads[i].data(), 64,
                           [&](Status st) {
                             EXPECT_TRUE(st.ok()) << st.ToString();
                             writes_done++;
                           },
                           i % c)
                    .ok());
  }
  for (int guard = 0; writes_done < kOps && guard < 3'000'000; guard++) {
    if (!tb.sim().Step()) break;
  }
  ASSERT_EQ(writes_done, kOps) << cfg.ToString();

  // Read back in reverse order; later writes to the same address win,
  // so verify against the final expected contents.
  std::vector<std::vector<uint8_t>> expected(kOps);
  {
    // Reconstruct final memory contents per address.
    std::vector<uint8_t> image(4 * kMiB, 0);
    for (int i = 0; i < kOps; i++) {
      std::copy(payloads[i].begin(), payloads[i].end(),
                image.begin() + addrs[i]);
    }
    for (int i = 0; i < kOps; i++) {
      expected[i].assign(image.begin() + addrs[i],
                         image.begin() + addrs[i] + 64);
    }
  }
  std::vector<std::vector<uint8_t>> results(kOps,
                                            std::vector<uint8_t>(64, 0));
  int reads_done = 0;
  for (int i = 0; i < kOps; i++) {
    ASSERT_TRUE(tb.client()
                    .Read(id, addrs[i], results[i].data(), 64,
                          [&](Status st) {
                            EXPECT_TRUE(st.ok()) << st.ToString();
                            reads_done++;
                          },
                          i % c)
                    .ok());
  }
  for (int guard = 0; reads_done < kOps && guard < 3'000'000; guard++) {
    if (!tb.sim().Step()) break;
  }
  ASSERT_EQ(reads_done, kOps) << cfg.ToString();
  for (int i = 0; i < kOps; i++) {
    EXPECT_EQ(results[i], expected[i]) << cfg.ToString() << " op " << i;
  }
  EXPECT_EQ(tb.client().stats(id)->errors, 0u);
  EXPECT_TRUE(tb.client().Delete(id).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigRoundTrip,
    ::testing::Values(
        std::make_tuple(1u, 0u, 1u, 1u),    // latency-optimal
        std::make_tuple(1u, 0u, 1u, 8u),    // loaded one-sided
        std::make_tuple(2u, 0u, 1u, 16u),   // multi-thread one-sided
        std::make_tuple(1u, 1u, 1u, 2u),    // two-sided singleton
        std::make_tuple(1u, 1u, 4u, 2u),    // small batches
        std::make_tuple(2u, 1u, 8u, 4u),    // shared server thread
        std::make_tuple(2u, 2u, 16u, 8u),   // thread per connection
        std::make_tuple(4u, 2u, 32u, 16u),  // throughput-ish
        std::make_tuple(4u, 4u, 61u, 3u)    // odd, off-grid values
        ));

// ---------------------------------------------------------------------------
// SLO search invariants over random SLOs against an analytic model.
// ---------------------------------------------------------------------------

PerfPoint AnalyticPerf(const RdmaConfig& cfg) {
  const double conn = 0.25 * cfg.q * (1 + 0.7 * (cfg.b - 1));
  const double cap = cfg.s == 0 ? 1e9 : cfg.s * 40.0;
  return PerfPoint{4.0 + 0.2 * (cfg.b - 1) + 1.1 * (cfg.q - 1) +
                       0.003 * cfg.b * cfg.q * cfg.c,
                   std::min(conn * cfg.c, cap)};
}

class SloSearchProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  static PerfModel BuildModel() {
    ConfigBounds b;
    b.max_client_threads = 8;
    b.record_bytes = 128;  // B = 32
    b.max_queue_depth = 8;
    OfflineModeler::Options opt;
    opt.early_termination = false;
    return OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);
  }
};

TEST_P(SloSearchProperty, FoundConfigsSatisfyAndPruningIsSound) {
  static const PerfModel model = BuildModel();
  Rng rng(GetParam());
  for (int i = 0; i < 40; i++) {
    Slo slo;
    slo.record_bytes = 128;
    slo.max_latency_us = 3.0 + rng.NextDouble() * 60.0;
    slo.min_throughput_mops = rng.NextDouble() * 120.0;

    const SearchResult pruned = SearchSloConfig(model, slo, true);
    const SearchResult full = SearchSloConfig(model, slo, false);

    // Pruning never changes the outcome, only the visit count.
    EXPECT_EQ(pruned.found, full.found);
    EXPECT_LE(pruned.leaves_visited, full.leaves_visited);
    if (pruned.found) {
      EXPECT_EQ(pruned.config, full.config);
      // The returned configuration is valid and predicted to satisfy.
      EXPECT_TRUE(model.bounds().Valid(pruned.config));
      EXPECT_LE(pruned.predicted.latency_us, slo.max_latency_us);
      EXPECT_GE(pruned.predicted.throughput_mops,
                slo.min_throughput_mops);
      // Cheapest-s property: no smaller server-thread count has any
      // satisfying configuration (grid scan oracle).
      for (uint32_t s = 0; s < pruned.config.s; s++) {
        for (uint32_t c = std::max(s, 1u); c <= 8; c++) {
          for (uint32_t bb = 1; bb <= (s == 0 ? 1u : 32u); bb++) {
            for (uint32_t q = 1; q <= 8; q++) {
              auto p = model.Estimate({c, s, bb, q});
              if (!p.ok()) continue;
              EXPECT_FALSE(p->Satisfies(slo))
                  << "s=" << s << " config beats chosen "
                  << pruned.config.ToString();
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SloSearchProperty,
                         ::testing::Values(1ull, 7ull, 42ull, 1337ull));

// ---------------------------------------------------------------------------
// Interpolation sanity across the whole space: estimates are finite,
// positive, and monotone-ish along q for fixed everything else.
// ---------------------------------------------------------------------------

TEST(PerfModelProperty, EstimatesAreFiniteEverywhere) {
  ConfigBounds b;
  b.max_client_threads = 8;
  b.record_bytes = 512;  // B = 8
  b.max_queue_depth = 8;
  OfflineModeler::Options opt;
  opt.early_termination = false;
  PerfModel model = OfflineModeler::Build(b, AnalyticPerf, opt, nullptr);

  for (uint32_t s = 0; s <= 8; s++) {
    for (uint32_t c = std::max(s, 1u); c <= 8; c++) {
      for (uint32_t bb = 1; bb <= (s == 0 ? 1u : 8u); bb++) {
        for (uint32_t q = 1; q <= 8; q++) {
          auto p = model.Estimate({c, s, bb, q});
          ASSERT_TRUE(p.ok()) << RdmaConfig{c, s, bb, q}.ToString();
          EXPECT_GT(p->latency_us, 0.0);
          EXPECT_GT(p->throughput_mops, 0.0);
          EXPECT_LT(p->latency_us, 1e6);
        }
      }
    }
  }
}

}  // namespace
}  // namespace redy
