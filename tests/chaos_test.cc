// Chaos tests: deterministic fault injection (gray failures, lossy
// links, flaps, NIC stalls) against the client's retry/timeout/
// reconnect machinery. The soak asserts the resilience contract: every
// callback fires, acknowledged data is never corrupted, error rates
// stay bounded while faults are active, and the system fully recovers
// once the schedule drains.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "chaos/fault_injector.h"
#include "chaos/storm.h"
#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

constexpr uint64_t kRecord = 64;

uint8_t FillByte(uint64_t idx, uint64_t i) {
  return static_cast<uint8_t>(idx * 131 + i * 7 + 13);
}

class ChaosTest : public ::testing::Test {
 protected:
  /// Testbed with the resilience machinery switched on.
  static TestbedOptions ResilientOpts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 2 * kMiB;
    o.client.max_retries = 6;
    o.client.sub_op_timeout_ns = 200 * kMicrosecond;
    o.client.retry_backoff_ns = 5 * kMicrosecond;
    o.client.retry_backoff_max_ns = 200 * kMicrosecond;
    return o;
  }

  /// Testbed with resilience off (surface every fault to the caller).
  static TestbedOptions FragileOpts() {
    TestbedOptions o = ResilientOpts();
    o.client.max_retries = 0;
    o.client.sub_op_timeout_ns = 0;
    return o;
  }

  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 20'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  static net::ServerId NodeOfRegion(Testbed& tb, CacheClient::CacheId id,
                                    uint32_t vregion) {
    auto vm = tb.client().RegionVm(id, vregion);
    EXPECT_TRUE(vm.ok());
    return tb.allocator().Find(*vm)->server;
  }
};

// --- Injector mechanics -----------------------------------------------------

TEST_F(ChaosTest, StallWindowDefersCompletions) {
  Testbed tb(FragileOpts());
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  chaos::FaultInjector::Options copts;
  copts.servers = {node};
  auto* chaos = tb.EnableChaos(copts);
  const sim::SimTime stall_end = tb.sim().Now() + 300 * kMicrosecond;
  chaos->AddStall(node, tb.sim().Now(), 300 * kMicrosecond);

  // A read that normally completes in a few microseconds is held until
  // the stall window closes — the NIC is alive but delivers nothing.
  char buf[64];
  sim::SimTime done_at = 0;
  ASSERT_TRUE(tb.client()
                  .Read(*id_or, 0, buf, sizeof(buf),
                        [&](Status st) {
                          EXPECT_TRUE(st.ok()) << st.ToString();
                          done_at = tb.sim().Now();
                        })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return done_at != 0; }));
  EXPECT_GE(done_at, stall_end);
  EXPECT_GT(chaos->stall_holds(), 0u);
}

TEST_F(ChaosTest, FlapFailsOpsWhenRetriesAreOff) {
  Testbed tb(FragileOpts());
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  auto* chaos = tb.EnableChaos({});
  chaos->AddFlap(tb.app_node(), node, tb.sim().Now(), 200 * kMicrosecond);

  char buf[64] = {7};
  int completed = 0, failed = 0;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, i * 64, buf, 64,
                           [&](Status st) {
                             completed++;
                             if (!st.ok()) failed++;
                           })
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == 8; }));
  EXPECT_EQ(failed, 8) << "a downed link with no retries fails every op";
  EXPECT_GT(chaos->injected_errors(), 0u);
}

TEST_F(ChaosTest, RetriesMaskATransientFlap) {
  Testbed tb(ResilientOpts());
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  auto* chaos = tb.EnableChaos({});
  chaos->AddFlap(tb.app_node(), node, tb.sim().Now(), 100 * kMicrosecond);

  char buf[64] = {9};
  int completed = 0, failed = 0;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, i * 64, buf, 64,
                           [&](Status st) {
                             completed++;
                             if (!st.ok()) failed++;
                           })
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == 8; }));
  EXPECT_EQ(failed, 0) << "backoff outlasts the 100 us flap";
  const auto* stats = tb.client().stats(*id_or);
  EXPECT_GT(stats->retries, 0u);
}

// Chained pointer chases under a link flap (DESIGN.md §15): a flap
// that opens mid-chain aborts the remaining hops with one poisoned
// completion; the retry machinery masks it exactly like a plain read,
// and every chase lands the correct record.
TEST_F(ChaosTest, ChainedReadsSurviveALinkFlap) {
  TestbedOptions o = ResilientOpts();
  o.client.chain_reads = true;
  Testbed tb(o);
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  // Records at 64 KiB, pointer words at 4 KiB.
  std::vector<std::vector<uint8_t>> recs(8, std::vector<uint8_t>(64));
  std::vector<uint64_t> words(8);
  int setup = 0;
  auto wrote = [&](Status st) {
    ASSERT_TRUE(st.ok()) << st.ToString();
    setup++;
  };
  for (int i = 0; i < 8; i++) {
    for (uint64_t j = 0; j < 64; j++) recs[i][j] = FillByte(i, j);
    words[i] = 64 * kKiB + i * 64;
    ASSERT_TRUE(
        tb.client().Write(*id_or, words[i], recs[i].data(), 64, wrote).ok());
    ASSERT_TRUE(tb.client()
                    .Write(*id_or, 4096 + i * 8, &words[i], 8, wrote)
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return setup == 16; }));

  auto* chaos = tb.EnableChaos({});
  chaos->AddFlap(tb.app_node(), node, tb.sim().Now(), 100 * kMicrosecond);

  std::vector<std::vector<uint8_t>> got(8, std::vector<uint8_t>(64));
  int completed = 0, failed = 0;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(tb.client()
                    .ReadIndirect(*id_or, 4096 + i * 8, got[i].data(), 64,
                                  [&](Status st) {
                                    completed++;
                                    if (!st.ok()) failed++;
                                  })
                    .ok());
  }
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == 8; }));
  EXPECT_EQ(failed, 0) << "backoff outlasts the 100 us flap";
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(got[i], recs[i]) << "chase " << i;
  }
  const auto* stats = tb.client().stats(*id_or);
  EXPECT_EQ(stats->indirect_reads, 8u);
  EXPECT_GT(stats->retries, 0u);
  EXPECT_GT(chaos->injected_errors(), 0u);
}

TEST_F(ChaosTest, DegradedLinkAddsLatency) {
  Testbed tb(FragileOpts());
  auto id_or =
      tb.client().CreateWithConfig(2 * kMiB, RdmaConfig{1, 0, 1, 8}, 64);
  ASSERT_TRUE(id_or.ok());
  const net::ServerId node = NodeOfRegion(tb, *id_or, 0);

  char buf[64];
  // Baseline round trip.
  sim::SimTime t0 = tb.sim().Now(), done = 0;
  ASSERT_TRUE(tb.client()
                  .Read(*id_or, 0, buf, 64,
                        [&](Status) { done = tb.sim().Now(); })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return done != 0; }));
  const sim::SimTime baseline = done - t0;

  constexpr uint64_t kExtra = 20 * kMicrosecond;
  chaos::FaultInjector::Options copts;
  copts.spike_p = 0.0;  // fixed extra only, no random spikes
  auto* chaos = tb.EnableChaos(copts);
  chaos->AddDegrade(tb.app_node(), node, tb.sim().Now(), 1 * kMillisecond,
                    kExtra);

  t0 = tb.sim().Now();
  done = 0;
  ASSERT_TRUE(tb.client()
                  .Read(*id_or, 0, buf, 64,
                        [&](Status) { done = tb.sim().Now(); })
                  .ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return done != 0; }));
  EXPECT_GE(done - t0, baseline + kExtra - 1);
  EXPECT_GT(chaos->injected_delays(), 0u);
}

// --- Soak -------------------------------------------------------------------

struct SoakCounts {
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  uint64_t corrupt = 0;
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t reconnects = 0;
  uint64_t injected = 0;

  bool operator==(const SoakCounts& o) const {
    return submitted == o.submitted && ok == o.ok && failed == o.failed &&
           corrupt == o.corrupt && retries == o.retries &&
           timeouts == o.timeouts && reconnects == o.reconnects &&
           injected == o.injected;
  }
};

class ChaosSoakTest : public ChaosTest {
 protected:
  /// Mixed read/write traffic against a cache while a seeded random
  /// fault schedule unfolds, then a clean run after the last fault.
  /// Reads target a pre-populated half of the cache (so any successful
  /// read has exactly one correct value); writes are write-once per
  /// record (so acknowledged writes have exactly one correct read-back).
  static SoakCounts RunSoak(uint64_t seed, const RdmaConfig& cfg) {
    SoakCounts counts;
    Testbed tb(ResilientOpts());
    auto id_or = tb.client().CreateWithConfig(4 * kMiB, cfg, 64);
    EXPECT_TRUE(id_or.ok()) << id_or.status().ToString();
    if (!id_or.ok()) return counts;
    const auto id = *id_or;

    const uint64_t records = 4 * kMiB / kRecord;
    const uint64_t read_base = records / 2;

    // Pre-populate the read half with its pattern.
    {
      std::vector<uint8_t> half((records - read_base) * kRecord);
      for (uint64_t j = 0; j < half.size(); j++) {
        half[j] = FillByte(read_base + j / kRecord, j % kRecord);
      }
      EXPECT_TRUE(
          tb.client().Poke(id, read_base * kRecord, half.data(), half.size())
              .ok());
    }

    // Seeded fault schedule over the cache's nodes.
    chaos::FaultInjector::Options copts;
    copts.seed = seed;
    copts.start = tb.sim().Now();
    copts.horizon = 4 * kMillisecond;
    copts.degrade_windows = 3;
    copts.lossy_windows = 3;
    copts.flap_windows = 2;
    copts.stall_windows = 2;
    copts.min_window_ns = 50 * kMicrosecond;
    copts.max_window_ns = 400 * kMicrosecond;
    const uint32_t nregions =
        static_cast<uint32_t>(4 * kMiB / tb.options().client.region_bytes);
    for (uint32_t r = 0; r < nregions; r++) {
      copts.servers.push_back(NodeOfRegion(tb, id, r));
    }
    auto* chaos = tb.EnableChaos(copts);
    chaos->Arm();

    uint64_t completed = 0;
    uint64_t next_write_idx = 0;
    Rng traffic_rng(seed ^ 0xABCDEF);
    std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
    std::unordered_map<uint64_t, bool> write_acked;

    auto pump = [&](int nops) {
      for (int i = 0; i < nops; i++) {
        const bool do_write =
            traffic_rng.Bernoulli(0.5) && next_write_idx < read_base;
        const uint32_t app_thread = static_cast<uint32_t>(i);
        if (do_write) {
          const uint64_t idx = next_write_idx++;
          auto data = std::make_unique<std::vector<uint8_t>>(kRecord);
          for (uint64_t j = 0; j < kRecord; j++) {
            (*data)[j] = FillByte(idx, j);
          }
          counts.submitted++;
          EXPECT_TRUE(tb.client()
                          .Write(id, idx * kRecord, data->data(), kRecord,
                                 [&counts, &completed, &write_acked,
                                  idx](Status st) {
                                   completed++;
                                   if (st.ok()) {
                                     counts.ok++;
                                     write_acked[idx] = true;
                                   } else {
                                     counts.failed++;
                                   }
                                 },
                                 app_thread)
                          .ok());
          bufs.push_back(std::move(data));
        } else {
          const uint64_t idx =
              read_base + traffic_rng.Uniform(records - read_base);
          auto dst = std::make_unique<std::vector<uint8_t>>(kRecord);
          auto* p = dst.get();
          counts.submitted++;
          EXPECT_TRUE(tb.client()
                          .Read(id, idx * kRecord, p->data(), kRecord,
                                [&counts, &completed, idx, p](Status st) {
                                  completed++;
                                  if (!st.ok()) {
                                    counts.failed++;
                                    return;
                                  }
                                  counts.ok++;
                                  for (uint64_t j = 0; j < kRecord; j++) {
                                    if ((*p)[j] != FillByte(idx, j)) {
                                      counts.corrupt++;
                                      break;
                                    }
                                  }
                                },
                                app_thread)
                          .ok());
          bufs.push_back(std::move(dst));
        }
      }
    };

    // Keep traffic flowing until the whole fault schedule has played
    // out. Every burst must drain: no op may hang forever.
    while (tb.sim().Now() <= chaos->last_fault_end()) {
      pump(64);
      EXPECT_TRUE(
          RunUntil(tb, [&] { return completed == counts.submitted; }))
          << "ops hung under faults at t=" << tb.sim().Now();
      tb.sim().RunFor(20 * kMicrosecond);
    }

    // Full recovery: past the last fault, fresh traffic is clean.
    tb.sim().RunFor(1 * kMillisecond);
    const uint64_t failed_during_faults = counts.failed;
    pump(128);
    EXPECT_TRUE(RunUntil(tb, [&] { return completed == counts.submitted; }));
    EXPECT_EQ(counts.failed, failed_during_faults)
        << "no failures after the fault schedule drained";

    // Acknowledged writes must read back exactly (write-once records).
    std::vector<uint8_t> readback(kRecord);
    for (const auto& [idx, acked] : write_acked) {
      EXPECT_TRUE(
          tb.client().Peek(id, idx * kRecord, readback.data(), kRecord).ok());
      for (uint64_t j = 0; j < kRecord; j++) {
        if (readback[j] != FillByte(idx, j)) {
          counts.corrupt++;
          break;
        }
      }
    }

    const auto* stats = tb.client().stats(id);
    counts.retries = stats->retries;
    counts.timeouts = stats->timeouts;
    counts.reconnects = stats->reconnects;
    counts.injected = chaos->injected_errors() + chaos->injected_delays() +
                      chaos->injected_spikes() + chaos->stall_holds();

    EXPECT_EQ(counts.corrupt, 0u) << "acknowledged data corrupted";
    EXPECT_GT(counts.injected, 0u) << "fault schedule never hit traffic";
    // Bounded failure rate: retries absorb most transient faults.
    EXPECT_LE(counts.failed, counts.submitted * 3 / 10)
        << counts.failed << " of " << counts.submitted << " ops failed";
    return counts;
  }
};

TEST_F(ChaosSoakTest, OneSidedSurvivesSeededSchedules) {
  for (uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    RunSoak(seed, RdmaConfig{2, 0, 1, 8});
  }
}

TEST_F(ChaosSoakTest, TwoSidedSurvivesSeededSchedules) {
  for (uint64_t seed : {5u, 19u, 31u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    RunSoak(seed, RdmaConfig{2, 1, 8, 4});
  }
}

TEST_F(ChaosSoakTest, SameSeedSameOutcome) {
  const SoakCounts a = RunSoak(7, RdmaConfig{2, 0, 1, 8});
  const SoakCounts b = RunSoak(7, RdmaConfig{2, 0, 1, 8});
  EXPECT_TRUE(a == b) << "fault injection must be bit-for-bit reproducible";
}

// --- Reclamation storm under gray faults ------------------------------------

struct StormCounts {
  uint64_t write_ok = 0;
  uint64_t write_failed = 0;
  uint64_t read_ok = 0;
  uint64_t read_failed = 0;
  uint64_t reclaims = 0;
  uint64_t events = 0;
  uint64_t regions = 0;
  uint64_t regions_lost = 0;
  uint64_t bytes = 0;
  uint64_t bytes_lost = 0;
  uint64_t resumes = 0;
  uint64_t retargets = 0;
  uint64_t repairs_started = 0;
  uint64_t repairs_completed = 0;
  uint64_t checks = 0;
  uint64_t violations = 0;

  bool operator==(const StormCounts& o) const {
    return write_ok == o.write_ok && write_failed == o.write_failed &&
           read_ok == o.read_ok && read_failed == o.read_failed &&
           reclaims == o.reclaims && events == o.events &&
           regions == o.regions && regions_lost == o.regions_lost &&
           bytes == o.bytes && bytes_lost == o.bytes_lost &&
           resumes == o.resumes && retargets == o.retargets &&
           repairs_started == o.repairs_started &&
           repairs_completed == o.repairs_completed && checks == o.checks &&
           violations == o.violations;
  }
};

class StormSoakTest : public ChaosTest {
 protected:
  /// Four spot VMs reclaimed in overlapping 3 ms windows — three
  /// single-region VMs of an unreplicated cache plus the primary of a
  /// replicated region — while a seeded gray-fault schedule runs and
  /// traffic keeps flowing. At 8 Gb/s one 2 MiB region copy takes
  /// ~2.1 ms, so the EDF scheduler can save the earliest deadlines in
  /// full but the tail of the storm necessarily loses data; the test
  /// asserts that loss is accounted byte-exactly, replicated regions
  /// lose nothing, the invariant checker stays clean, and the whole
  /// run is reproducible from the seed.
  static StormCounts RunStorm(uint64_t seed) {
    StormCounts c;
    TestbedOptions o = ResilientOpts();
    o.client.max_regions_per_vm = 1;  // one region per VM: VM loss == region
    o.reclaim_notice = 3 * kMillisecond;
    Testbed tb(o);
    tb.EnableInvariantChecks();
    const uint64_t kRegion = o.client.region_bytes;

    auto plain_or = tb.client().CreateWithConfig(
        8 * kMiB, RdmaConfig{2, 0, 1, 8}, 64, /*spot=*/true);
    auto repl_or = tb.client().CreateReplicated(
        4 * kMiB, RdmaConfig{1, 0, 1, 8}, 64, /*spot=*/true);
    EXPECT_TRUE(plain_or.ok()) << plain_or.status().ToString();
    EXPECT_TRUE(repl_or.ok()) << repl_or.status().ToString();
    if (!plain_or.ok() || !repl_or.ok()) return c;
    const auto plain = *plain_or;
    const auto repl = *repl_or;

    uint64_t submitted = 0, completed = 0;
    std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
    // Write-once records; acked bytes become invariant ground truth.
    auto write_rec = [&](CacheClient::CacheId id, uint64_t addr,
                         uint64_t tag) {
      auto data = std::make_unique<std::vector<uint8_t>>(kRecord);
      for (uint64_t j = 0; j < kRecord; j++) {
        (*data)[j] = static_cast<uint8_t>(tag * 31 + j * 7 + 5);
      }
      auto* p = data.get();
      submitted++;
      EXPECT_TRUE(tb.client()
                      .Write(id, addr, p->data(), kRecord,
                             [&c, &completed, &tb, id, addr, p](Status st) {
                               completed++;
                               if (st.ok()) {
                                 c.write_ok++;
                                 tb.RecordAckedBytes(id, addr, p->data(),
                                                     kRecord);
                               } else {
                                 c.write_failed++;
                               }
                             })
                      .ok());
      bufs.push_back(std::move(data));
    };
    auto read_rec = [&](CacheClient::CacheId id, uint64_t addr) {
      auto dst = std::make_unique<std::vector<uint8_t>>(kRecord);
      submitted++;
      EXPECT_TRUE(tb.client()
                      .Read(id, addr, dst->data(), kRecord,
                            [&c, &completed](Status st) {
                              completed++;
                              st.ok() ? c.read_ok++ : c.read_failed++;
                            })
                      .ok());
      bufs.push_back(std::move(dst));
    };
    auto drain = [&] {
      EXPECT_TRUE(RunUntil(tb, [&] { return completed == submitted; }))
          << "ops hung during the storm at t=" << tb.sim().Now();
    };

    // Pre-populate 32 records per region in both caches.
    for (uint32_t r = 0; r < 4; r++) {
      for (uint64_t k = 0; k < 32; k++) {
        write_rec(plain, r * kRegion + k * kRecord, r * 100 + k);
      }
    }
    for (uint32_t r = 0; r < 2; r++) {
      for (uint64_t k = 0; k < 32; k++) {
        write_rec(repl, r * kRegion + k * kRecord, 7000 + r * 100 + k);
      }
    }
    drain();

    // Victims: three of the plain cache's four VMs plus the primary of
    // the replicated region 0 — all reclaimed in overlapping windows.
    std::vector<cluster::VmId> victims;
    std::vector<net::ServerId> victim_nodes;
    for (uint32_t r = 0; r < 3; r++) {
      auto vm = tb.client().RegionVm(plain, r);
      EXPECT_TRUE(vm.ok());
      victims.push_back(*vm);
      victim_nodes.push_back(tb.allocator().Find(*vm)->server);
    }
    {
      auto vm = tb.client().RegionVm(repl, 0);
      EXPECT_TRUE(vm.ok());
      victims.push_back(*vm);
      victim_nodes.push_back(tb.allocator().Find(*vm)->server);
    }

    // Gray faults racing the storm: seeded degrade/lossy/flap windows
    // on the client links plus NIC stalls on the victims themselves.
    chaos::FaultInjector::Options copts;
    copts.seed = seed;
    copts.start = tb.sim().Now();
    copts.horizon = 6 * kMillisecond;
    copts.degrade_windows = 2;
    copts.lossy_windows = 2;
    copts.flap_windows = 1;
    copts.stall_windows = 2;
    copts.min_window_ns = 50 * kMicrosecond;
    copts.max_window_ns = 300 * kMicrosecond;
    for (uint32_t r = 0; r < 4; r++) {
      auto vm = tb.client().RegionVm(plain, r);
      EXPECT_TRUE(vm.ok());
      copts.servers.push_back(tb.allocator().Find(*vm)->server);
    }
    auto* chaos = tb.EnableChaos(copts);
    chaos->Arm();
    // One deterministic stall on the earliest victim's NIC mid-copy.
    chaos->AddStall(victim_nodes[0], tb.sim().Now() + 500 * kMicrosecond,
                    200 * kMicrosecond);

    chaos::ReclamationStorm::Options sopts;
    sopts.seed = seed;
    sopts.start = tb.sim().Now() + 200 * kMicrosecond;
    sopts.stagger = 1 * kMillisecond;
    sopts.victims = victims;
    chaos::ReclamationStorm storm(&tb.sim(), &tb.allocator(), sopts);
    storm.Arm();

    // Keep traffic flowing past the last fault, the last force-free,
    // and until every recovery (migrations and repairs) drains.
    uint64_t pw = 0, rw = 0;
    Rng traffic_rng(seed ^ 0xF00D);
    auto horizon = [&] {
      sim::SimTime h = chaos->last_fault_end();
      if (storm.last_deadline() > h) h = storm.last_deadline();
      return h;
    };
    while (tb.sim().Now() <= horizon() ||
           tb.client().PendingRecoveries() > 0) {
      for (int k = 0; k < 8; k++, pw++) {
        write_rec(plain, (pw % 4) * kRegion + (32 + pw / 4) * kRecord,
                  1000 + pw);
      }
      for (int k = 0; k < 4; k++, rw++) {
        write_rec(repl, (rw % 2) * kRegion + (32 + rw / 2) * kRecord,
                  9000 + rw);
      }
      for (int k = 0; k < 4; k++) {
        const uint64_t idx = traffic_rng.Uniform(4 * 32);
        read_rec(plain, (idx % 4) * kRegion + (idx / 4) * kRecord);
      }
      drain();
      tb.sim().RunFor(50 * kMicrosecond);
    }

    // Full recovery: fresh traffic past the storm is clean.
    tb.sim().RunFor(1 * kMillisecond);
    const uint64_t failed_before = c.write_failed + c.read_failed;
    for (int k = 0; k < 16; k++, pw++) {
      write_rec(plain, (pw % 4) * kRegion + (32 + pw / 4) * kRecord,
                1000 + pw);
    }
    drain();
    EXPECT_EQ(c.write_failed + c.read_failed, failed_before)
        << "no failures after the storm drained";

    // Exact loss accounting: every migration event balances to the
    // byte, losses are attributed to named regions, and the per-cache
    // counters agree with the event log.
    auto rb_or = tb.client().RegionSize(plain);
    EXPECT_TRUE(rb_or.ok());
    for (const auto& ev : tb.client().migrations()) {
      EXPECT_EQ(ev.cache, plain)
          << "replicated regions fail over; they never migrate here";
      c.events++;
      c.regions += ev.regions;
      c.regions_lost += ev.regions_lost;
      c.bytes += ev.bytes;
      c.bytes_lost += ev.bytes_lost;
      c.resumes += ev.resumes;
      c.retargets += ev.retargets;
      EXPECT_EQ(ev.data_lost, ev.regions_lost > 0);
      EXPECT_EQ(ev.lost_vregions.size(), ev.regions_lost);
      EXPECT_EQ(ev.bytes + ev.bytes_lost,
                static_cast<uint64_t>(ev.regions) * *rb_or)
          << "migrated + lost bytes must cover the moved regions exactly";
    }
    EXPECT_EQ(c.events, 3u);
    // The storm outruns the notice window for the tail of the EDF
    // queue (three serialized 2.1 ms copies against ~3-4 ms deadlines):
    // some region is lost, and some bytes are saved.
    EXPECT_GT(c.regions_lost, 0u);
    EXPECT_GT(c.bytes, 0u);
    const auto* ps = tb.client().stats(plain);
    EXPECT_EQ(ps->storm_regions_lost, c.regions_lost);
    EXPECT_EQ(ps->migration_resumes, c.resumes);
    EXPECT_EQ(ps->migration_retargets, c.retargets);

    // The replicated cache: instant failover, zero loss, replication
    // factor restored by the background repair.
    const auto* rs = tb.client().stats(repl);
    c.repairs_started = rs->repairs_started;
    c.repairs_completed = rs->repairs_completed;
    EXPECT_GE(c.repairs_started, 1u);
    EXPECT_EQ(c.repairs_completed, c.repairs_started);
    for (uint32_t r = 0; r < 2; r++) {
      auto rep = tb.client().RegionReplicated(repl, r);
      EXPECT_TRUE(rep.ok() && *rep) << "replica not restored for region " << r;
    }

    c.reclaims = storm.reclaims_issued();
    EXPECT_EQ(c.reclaims, victims.size());
    EXPECT_EQ(tb.client().PendingRecoveries(), 0u);

    // Invariant checker: swept after every recovery plus a final pass,
    // always clean (acked bytes on surviving regions never mutate, no
    // region maps to a dead VM, anti-affinity holds).
    EXPECT_TRUE(tb.CheckInvariantsNow().empty());
    c.checks = tb.invariant_checks();
    c.violations = tb.invariant_violations().size();
    EXPECT_GT(c.checks, 1u);
    EXPECT_EQ(c.violations, 0u) << tb.invariant_violations()[0];
    return c;
  }
};

TEST_F(StormSoakTest, OverlappingReclamationsUnderGrayFaults) {
  for (uint64_t seed : {3u, 17u, 29u}) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    RunStorm(seed);
  }
}

TEST_F(StormSoakTest, SameSeedSameStorm) {
  const StormCounts a = RunStorm(13);
  const StormCounts b = RunStorm(13);
  EXPECT_TRUE(a == b) << "storm recovery must be bit-for-bit reproducible";
}

}  // namespace
}  // namespace redy
