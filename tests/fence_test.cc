// Fencing soak: epoch-fenced remote access under reclamation storms
// and gray faults. The contract under test is the strong one from
// DESIGN.md §7 — with fencing and end-to-end checksums on, *no
// acknowledged byte is ever corrupted*, across a whole seed matrix,
// and a run is byte-identically reproducible from its seed down to
// the telemetry snapshot.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/buggify.h"
#include "chaos/fault_injector.h"
#include "chaos/storm.h"
#include "redy/cache_client.h"
#include "redy/testbed.h"

namespace redy {
namespace {

constexpr uint64_t kRecord = 64;
constexpr uint64_t kSlab = 32 * kKiB;

/// Deterministic, address-keyed payload so the final readback can
/// recompute expectations without storing every buffer.
uint8_t PatternByte(uint64_t addr, uint64_t i) {
  return static_cast<uint8_t>((addr >> 6) * 131 + addr + i * 7 + 13);
}

struct SoakOutcome {
  uint64_t write_ok = 0;
  uint64_t write_failed = 0;
  uint64_t read_ok = 0;
  uint64_t read_failed = 0;
  uint64_t acked_records = 0;
  uint64_t corrupt_records = 0;
  uint64_t invariant_violations = 0;
  uint64_t checksum_mismatches = 0;
  uint64_t fence_revocations = 0;
  uint64_t lease_renewals = 0;
  sim::SimTime end_time = 0;
  /// Full metrics registry snapshot — the determinism check compares
  /// two same-seed runs byte for byte.
  std::string telemetry_json;

  bool operator==(const SoakOutcome& o) const {
    return write_ok == o.write_ok && write_failed == o.write_failed &&
           read_ok == o.read_ok && read_failed == o.read_failed &&
           acked_records == o.acked_records &&
           corrupt_records == o.corrupt_records &&
           invariant_violations == o.invariant_violations &&
           checksum_mismatches == o.checksum_mismatches &&
           fence_revocations == o.fence_revocations &&
           lease_renewals == o.lease_renewals && end_time == o.end_time &&
           telemetry_json == o.telemetry_json;
  }
};

class FenceSoakTest : public ::testing::Test {
 protected:
  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 30'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  /// One fenced storm soak: a four-region two-sided cache on spot VMs,
  /// three of the four VMs reclaimed in overlapping windows while a
  /// seeded gray-fault schedule (degraded links, loss, flaps, NIC
  /// stalls) runs and mixed one-sided/two-sided traffic keeps flowing.
  /// Regions are small enough that every migration beats its deadline,
  /// so the acked-bytes ground truth must survive in full.
  static SoakOutcome RunFenceSoak(uint64_t seed) {
    SoakOutcome out;
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 256 * kKiB;
    o.client.max_regions_per_vm = 1;  // VM reclaim == region migration
    o.client.migration_chunk_bytes = 64 * kKiB;
    o.client.migration_bandwidth_bps = 8e9;
    o.client.max_retries = 6;
    o.client.sub_op_timeout_ns = 200 * kMicrosecond;
    o.client.retry_backoff_ns = 5 * kMicrosecond;
    o.client.retry_backoff_max_ns = 200 * kMicrosecond;
    // epoch_fencing / verify_checksums / lease_ttl_ns: defaults (on).
    o.reclaim_notice = 4 * kMillisecond;
    Testbed tb(o);
    tb.EnableInvariantChecks();
    const uint64_t kRegion = o.client.region_bytes;

    // Two-sided threads (s=1) so the lease/epoch-echo path is on the
    // record data path; slab writes exceed the inline cutoff and go
    // one-sided through NIC epoch checks.
    auto id_or = tb.client().CreateWithConfig(
        4 * kRegion, RdmaConfig{/*c=*/1, /*s=*/1, /*b=*/8, /*q=*/4},
        /*record_bytes=*/64, /*spot=*/true);
    EXPECT_TRUE(id_or.ok()) << id_or.status().ToString();
    if (!id_or.ok()) return out;
    const auto id = *id_or;

    uint64_t submitted = 0, completed = 0;
    std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
    // addr -> len of every acknowledged (write-once) record/slab.
    std::map<uint64_t, uint64_t> acked;
    auto write_at = [&](uint64_t addr, uint64_t len) {
      auto data = std::make_unique<std::vector<uint8_t>>(len);
      for (uint64_t j = 0; j < len; j++) (*data)[j] = PatternByte(addr, j);
      auto* p = data.get();
      submitted++;
      EXPECT_TRUE(tb.client()
                      .Write(id, addr, p->data(), len,
                             [&, addr, len, p](Status st) {
                               completed++;
                               if (st.ok()) {
                                 out.write_ok++;
                                 acked[addr] = len;
                                 tb.RecordAckedBytes(id, addr, p->data(), len);
                               } else {
                                 out.write_failed++;
                               }
                             })
                      .ok());
      bufs.push_back(std::move(data));
    };
    auto read_at = [&](uint64_t addr, uint64_t len) {
      auto dst = std::make_unique<std::vector<uint8_t>>(len);
      submitted++;
      EXPECT_TRUE(tb.client()
                      .Read(id, addr, dst->data(), len,
                            [&](Status st) {
                              completed++;
                              st.ok() ? out.read_ok++ : out.read_failed++;
                            })
                      .ok());
      bufs.push_back(std::move(dst));
    };
    auto drain = [&] {
      EXPECT_TRUE(RunUntil(tb, [&] { return completed == submitted; }))
          << "ops hung during the fence soak at t=" << tb.sim().Now();
    };

    // Pre-populate: 32 two-sided records in the lower half of each
    // region, two one-sided slabs in the upper half.
    for (uint32_t r = 0; r < 4; r++) {
      for (uint64_t k = 0; k < 32; k++) {
        write_at(r * kRegion + k * kRecord, kRecord);
      }
      for (uint64_t s = 0; s < 2; s++) {
        write_at(r * kRegion + 128 * kKiB + s * kSlab, kSlab);
      }
    }
    drain();

    // Victims: three of the four single-region VMs.
    std::vector<cluster::VmId> victims;
    for (uint32_t r = 0; r < 3; r++) {
      auto vm = tb.client().RegionVm(id, r);
      EXPECT_TRUE(vm.ok());
      victims.push_back(*vm);
    }

    // Seeded gray faults on every region's server, racing the storm.
    chaos::FaultInjector::Options copts;
    copts.seed = seed;
    copts.start = tb.sim().Now();
    copts.horizon = 5 * kMillisecond;
    copts.degrade_windows = 2;
    copts.lossy_windows = 2;
    copts.flap_windows = 1;
    copts.stall_windows = 2;
    copts.min_window_ns = 50 * kMicrosecond;
    copts.max_window_ns = 300 * kMicrosecond;
    for (uint32_t r = 0; r < 4; r++) {
      auto vm = tb.client().RegionVm(id, r);
      EXPECT_TRUE(vm.ok());
      copts.servers.push_back(tb.allocator().Find(*vm)->server);
    }
    auto* chaos = tb.EnableChaos(copts);
    chaos->Arm();

    chaos::ReclamationStorm::Options sopts;
    sopts.seed = seed;
    sopts.start = tb.sim().Now() + 200 * kMicrosecond;
    sopts.stagger = 1 * kMillisecond;
    sopts.victims = victims;
    chaos::ReclamationStorm storm(&tb.sim(), &tb.allocator(), sopts);
    storm.Arm();

    // Traffic through the whole storm: fresh write-once records and
    // slabs, plus reads of already-acked addresses.
    uint64_t w = 0, sl = 0;
    auto horizon = [&] {
      sim::SimTime h = chaos->last_fault_end();
      if (storm.last_deadline() > h) h = storm.last_deadline();
      return h;
    };
    while (tb.sim().Now() <= horizon() ||
           tb.client().PendingRecoveries() > 0) {
      for (int k = 0; k < 8; k++, w++) {
        write_at((w % 4) * kRegion + (32 + w / 4) * kRecord, kRecord);
      }
      if (sl < 8) {
        write_at((sl % 4) * kRegion + 192 * kKiB + (sl / 4) * kSlab, kSlab);
        sl++;
      }
      for (int k = 0; k < 4; k++) {
        const uint64_t idx = (seed * 2654435761u + w * 40503u + k) % (4 * 32);
        read_at((idx % 4) * kRegion + (idx / 4) * kRecord, kRecord);
      }
      drain();
      tb.sim().RunFor(50 * kMicrosecond);
    }
    tb.sim().RunFor(1 * kMillisecond);
    drain();

    // Oracle: every acknowledged byte reads back exactly, through the
    // normal data path, against the post-storm placements.
    for (const auto& [addr, len] : acked) {
      std::vector<uint8_t> got(len);
      Status rs;
      bool done = false;
      EXPECT_TRUE(tb.client()
                      .Read(id, addr, got.data(), len,
                            [&](Status st) {
                              rs = st;
                              done = true;
                            })
                      .ok());
      RunUntil(tb, [&] { return done; });
      out.acked_records++;
      bool bad = !done || !rs.ok();
      if (!bad) {
        for (uint64_t j = 0; j < len && !bad; j++) {
          bad = got[j] != PatternByte(addr, j);
        }
      }
      if (bad) out.corrupt_records++;
    }

    const auto now_violations = tb.CheckInvariantsNow();
    out.invariant_violations =
        tb.invariant_violations().size() + now_violations.size();
    const auto* st = tb.client().stats(id);
    out.checksum_mismatches = st->checksum_mismatches;
    out.fence_revocations = st->fence_revocations;
    out.lease_renewals = st->lease_renewals;
    out.end_time = tb.sim().Now();
    out.telemetry_json = tb.telemetry().metrics().ToJson();
    return out;
  }
};

// Acceptance gate: >= 20 seeds of reclamation storms under gray
// faults, fencing and checksums on, zero corruption of acknowledged
// bytes and zero end-to-end checksum mismatches in every run.
TEST_F(FenceSoakTest, TwentySeedStormSoakZeroAckedCorruption) {
  for (uint64_t seed = 1; seed <= 20; seed++) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const SoakOutcome out = RunFenceSoak(seed);
    EXPECT_GT(out.acked_records, 0u);
    EXPECT_EQ(out.corrupt_records, 0u);
    EXPECT_EQ(out.checksum_mismatches, 0u);
    EXPECT_EQ(out.invariant_violations, 0u);
    // The storm migrated regions with fencing on: each commit revoked
    // the old placement's epoch.
    EXPECT_GE(out.fence_revocations, 1u);
  }
}

// Byte-identical determinism: the same seed produces the same counts
// AND the same telemetry registry snapshot, character for character.
TEST_F(FenceSoakTest, SameSeedSameTelemetrySnapshot) {
  const SoakOutcome a = RunFenceSoak(7);
  const SoakOutcome b = RunFenceSoak(7);
  EXPECT_TRUE(a == b) << "fenced soak must be bit-for-bit reproducible";
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
  EXPECT_FALSE(a.telemetry_json.empty());
}

// --- NIC op chains under the fence (DESIGN.md §15) --------------------------

class ChainFenceTest : public ::testing::Test {
 protected:
  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 30'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  struct ChainOutcome {
    uint64_t indirect_reads = 0;
    uint64_t chained_reads = 0;
    uint64_t chain_fallbacks = 0;
    uint64_t retries = 0;
    uint64_t fence_redirects = 0;
    std::string telemetry_json;
    bool bytes_ok = false;
  };

  /// One chained indirect read with a forced buggify schedule. The
  /// first consulted decision is this chase's kChainMidFault, so a
  /// leading `true` poisons the dependent hop's epoch mid-chain.
  static ChainOutcome RunForcedMidChainFault(std::vector<bool> schedule) {
    ChainOutcome out;
    chaos::Buggify buggify(std::move(schedule));
    TestbedOptions o;
    o.client.chain_reads = true;
    o.client.buggify = &buggify;
    Testbed tb(o);
    auto id_or = tb.client().CreateWithConfig(
        8 * kMiB, RdmaConfig{/*c=*/1, /*s=*/0, /*b=*/1, /*q=*/4},
        /*record_bytes=*/64);
    EXPECT_TRUE(id_or.ok()) << id_or.status().ToString();
    if (!id_or.ok()) return out;
    const auto id = *id_or;

    std::vector<uint8_t> rec(64);
    for (uint64_t j = 0; j < rec.size(); j++) rec[j] = PatternByte(64, j);
    const uint64_t word = 64 * kKiB;
    int setup = 0;
    auto wrote = [&setup](Status st) {
      EXPECT_TRUE(st.ok()) << st.ToString();
      setup++;
    };
    EXPECT_TRUE(
        tb.client().Write(id, word, rec.data(), rec.size(), wrote).ok());
    EXPECT_TRUE(tb.client().Write(id, 128, &word, sizeof(word), wrote).ok());
    EXPECT_TRUE(RunUntil(tb, [&] { return setup == 2; }));

    std::vector<uint8_t> got(64);
    bool done = false;
    Status rs;
    EXPECT_TRUE(tb.client()
                    .ReadIndirect(id, 128, got.data(), got.size(),
                                  [&](Status st) {
                                    rs = st;
                                    done = true;
                                  })
                    .ok());
    EXPECT_TRUE(RunUntil(tb, [&] { return done; }));
    EXPECT_TRUE(rs.ok()) << rs.ToString();
    out.bytes_ok = rs.ok() && got == rec;

    const auto* st = tb.client().stats(id);
    out.indirect_reads = st->indirect_reads;
    out.chained_reads = st->chained_reads;
    out.chain_fallbacks = st->chain_fallbacks;
    out.retries = st->retries;
    out.fence_redirects = st->fence_redirects;
    out.telemetry_json = tb.telemetry().metrics().ToJson();
    return out;
  }
};

// A mid-chain stale epoch aborts the chain with one poisoned
// completion; the fence-redirect retry re-issues the chase hop-by-hop
// (plain READs are unfenced) and the application sees only a clean,
// correct read.
TEST_F(ChainFenceTest, MidChainStaleEpochRetriesUnchainedAndSucceeds) {
  const ChainOutcome out = RunForcedMidChainFault({true});
  EXPECT_TRUE(out.bytes_ok);
  EXPECT_EQ(out.indirect_reads, 1u);
  EXPECT_EQ(out.chained_reads, 0u);     // poisoned attempt never counts
  EXPECT_EQ(out.chain_fallbacks, 1u);   // retried as the two-hop chase
  EXPECT_GE(out.retries, 1u);
  EXPECT_GE(out.fence_redirects, 1u);
}

// The same forced schedule replays byte-identically, down to the
// telemetry registry snapshot.
TEST_F(ChainFenceTest, ForcedMidChainFaultReplaysByteIdentically) {
  const ChainOutcome a = RunForcedMidChainFault({true});
  const ChainOutcome b = RunForcedMidChainFault({true});
  EXPECT_EQ(a.telemetry_json, b.telemetry_json);
  EXPECT_FALSE(a.telemetry_json.empty());
}

// No fault injected: the chase stays on the one-doorbell fast path and
// none of the fence machinery engages.
TEST_F(ChainFenceTest, CleanChainTakesOneDoorbellNoRetries) {
  const ChainOutcome out = RunForcedMidChainFault({false});
  EXPECT_TRUE(out.bytes_ok);
  EXPECT_EQ(out.indirect_reads, 1u);
  EXPECT_EQ(out.chained_reads, 1u);
  EXPECT_EQ(out.chain_fallbacks, 0u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.fence_redirects, 0u);
}

// --- Lease behavior ---------------------------------------------------------

class LeaseTest : public ::testing::Test {
 protected:
  template <typename Pred>
  static bool RunUntil(Testbed& tb, Pred pred, int max_steps = 20'000'000) {
    for (int i = 0; i < max_steps; i++) {
      if (pred()) return true;
      if (!tb.sim().Step()) return pred();
    }
    return pred();
  }

  static TestbedOptions TwoSidedOpts() {
    TestbedOptions o;
    o.pods = 2;
    o.racks_per_pod = 2;
    o.servers_per_rack = 4;
    o.client.region_bytes = 256 * kKiB;
    o.client.max_retries = 6;
    o.client.sub_op_timeout_ns = 200 * kMicrosecond;
    o.client.retry_backoff_ns = 5 * kMicrosecond;
    return o;
  }
};

// A write burst against a region whose lease lapsed is deferred, an
// explicit kLease round trip renews it, and the writes then complete —
// the lease hiccup consumes no retry budget and surfaces no error.
// Bursts (not singletons) keep the ops on the two-sided message ring:
// a batch of one converts to a one-sided write and bypasses the lease.
TEST_F(LeaseTest, LapsedLeaseDefersWriteUntilRenewal) {
  TestbedOptions o = TwoSidedOpts();
  Testbed tb(o);
  auto id_or = tb.client().CreateWithConfig(
      512 * kKiB, RdmaConfig{1, 1, 8, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  uint8_t rec[64];
  for (uint64_t j = 0; j < sizeof(rec); j++) rec[j] = PatternByte(0, j);
  int done = 0;
  auto burst = [&](uint64_t base) {
    for (uint64_t k = 0; k < 8; k++) {
      ASSERT_TRUE(tb.client()
                      .Write(id, base + k * 64, rec, sizeof(rec),
                             [&](Status st) {
                               EXPECT_TRUE(st.ok()) << st.ToString();
                               done++;
                             })
                      .ok());
    }
  };
  // First burst arms the lease via the piggybacked renewal on its
  // two-sided responses.
  burst(0);
  ASSERT_TRUE(RunUntil(tb, [&] { return done == 8; }));

  // Idle far past the lease TTL (1 ms default): the lease lapses with
  // no renewal traffic to piggyback on.
  tb.sim().RunFor(5 * kMillisecond);

  burst(1024);
  ASSERT_TRUE(RunUntil(tb, [&] { return done == 16; }));

  const auto* st = tb.client().stats(id);
  EXPECT_GE(st->lease_expirations, 1u)
      << "the idle write should have found its lease lapsed";
  EXPECT_GE(st->lease_renewals, 1u)
      << "an explicit kLease grant should have re-armed the lease";
  EXPECT_EQ(st->errors, 0u);
}

// lease_ttl_ns = 0 disables lease gating entirely: the same idle
// pattern defers nothing (the NIC/server epoch check remains the hard
// fence).
TEST_F(LeaseTest, ZeroTtlDisablesLeaseGating) {
  TestbedOptions o = TwoSidedOpts();
  o.client.lease_ttl_ns = 0;
  Testbed tb(o);
  auto id_or = tb.client().CreateWithConfig(
      512 * kKiB, RdmaConfig{1, 1, 8, 4}, 64);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  uint8_t rec[64] = {5};
  int done = 0;
  auto burst = [&](uint64_t base) {
    for (uint64_t k = 0; k < 8; k++) {
      ASSERT_TRUE(tb.client().Write(id, base + k * 64, rec, sizeof(rec),
                                    [&](Status st) {
                                      EXPECT_TRUE(st.ok());
                                      done++;
                                    }).ok());
    }
  };
  burst(0);
  ASSERT_TRUE(RunUntil(tb, [&] { return done == 8; }));
  tb.sim().RunFor(5 * kMillisecond);
  burst(1024);
  ASSERT_TRUE(RunUntil(tb, [&] { return done == 16; }));

  const auto* st = tb.client().stats(id);
  EXPECT_EQ(st->lease_expirations, 0u);
}

// --- Cutover fencing --------------------------------------------------------

// Migration mid-traffic with fencing on: writes left in flight when
// the hot region's VM is reclaimed either drain before the cutover or
// are fenced (ProtectionError) and redirected to the new placement.
// Either way every acknowledged byte survives, and the commit is
// observable as an epoch revocation.
TEST_F(FenceSoakTest, CutoverFencesAndRedirectsInFlightWrites) {
  TestbedOptions o;
  o.pods = 2;
  o.racks_per_pod = 2;
  o.servers_per_rack = 4;
  o.client.region_bytes = 1 * kMiB;
  o.client.max_regions_per_vm = 1;
  o.client.migration_chunk_bytes = 128 * kKiB;
  o.client.migration_bandwidth_bps = 8e9;
  o.client.max_retries = 6;
  o.client.sub_op_timeout_ns = 200 * kMicrosecond;
  o.client.retry_backoff_ns = 5 * kMicrosecond;
  o.reclaim_notice = 30 * kMillisecond;
  Testbed tb(o);
  const uint64_t kRegion = o.client.region_bytes;

  auto id_or = tb.client().CreateWithConfig(
      2 * kMiB, RdmaConfig{1, 1, 8, 4}, 64, /*spot=*/true);
  ASSERT_TRUE(id_or.ok());
  const auto id = *id_or;

  uint64_t submitted = 0, completed = 0, ok = 0;
  std::map<uint64_t, uint64_t> acked;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> bufs;
  auto write_at = [&](uint64_t addr, uint64_t len) {
    auto data = std::make_unique<std::vector<uint8_t>>(len);
    for (uint64_t j = 0; j < len; j++) (*data)[j] = PatternByte(addr, j);
    submitted++;
    ASSERT_TRUE(tb.client()
                    .Write(id, addr, data->data(), len,
                           [&, addr, len](Status st) {
                             completed++;
                             if (st.ok()) {
                               ok++;
                               acked[addr] = len;
                             }
                           })
                    .ok());
    bufs.push_back(std::move(data));
  };

  // Burst of one-sided slabs against region 0 plus two-sided records
  // against region 1, then reclaim region 0's VM while they're in
  // flight.
  for (uint32_t k = 0; k < 8; k++) write_at(k * (128 * kKiB), 64 * kKiB);
  for (uint32_t r = 0; r < 16; r++) write_at(kRegion + 64 * kKiB + r * 64, 64);
  tb.sim().RunFor(3 * kMicrosecond);
  auto victim = tb.client().RegionVm(id, 0);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(tb.allocator().Reclaim(*victim).ok());
  ASSERT_TRUE(RunUntil(tb, [&] { return completed == submitted; }));
  tb.sim().RunFor(10 * kMillisecond);

  const auto* st = tb.client().stats(id);
  EXPECT_GE(st->fence_revocations, 1u)
      << "the migration commit must revoke the old placement's epoch";
  EXPECT_EQ(st->checksum_mismatches, 0u);
  EXPECT_GT(ok, 0u);

  // Every acknowledged byte reads back exactly from the new placement.
  for (const auto& [addr, len] : acked) {
    std::vector<uint8_t> got(len);
    bool done = false;
    Status rs;
    ASSERT_TRUE(tb.client()
                    .Read(id, addr, got.data(), len,
                          [&](Status s) {
                            rs = s;
                            done = true;
                          })
                    .ok());
    ASSERT_TRUE(RunUntil(tb, [&] { return done; }));
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    for (uint64_t j = 0; j < len; j++) {
      ASSERT_EQ(got[j], PatternByte(addr, j))
          << "acked byte mismatch at addr " << addr << " + " << j;
    }
  }
}

}  // namespace
}  // namespace redy
