// common::VecDeque unit tests: FIFO semantics with front pushes, the
// no-allocation-after-high-water guarantee the data path relies on
// (DESIGN.md §10), and a randomized parity run against std::deque.

#include "common/vec_deque.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <random>
#include <string>

namespace redy {
namespace {

using common::VecDeque;

TEST(VecDequeTest, PushPopFrontBack) {
  VecDeque<int> d;
  EXPECT_TRUE(d.empty());
  d.push_back(1);
  d.push_back(2);
  d.push_front(0);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.front(), 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  d.pop_front();
  EXPECT_EQ(d.front(), 1);
  d.pop_front();
  d.pop_front();
  EXPECT_TRUE(d.empty());
}

TEST(VecDequeTest, ClearReleasesAndStaysUsable) {
  VecDeque<std::string> d;
  for (int i = 0; i < 10; i++) d.push_back(std::to_string(i));
  d.clear();
  EXPECT_TRUE(d.empty());
  d.push_front(std::string("x"));
  EXPECT_EQ(d.front(), "x");
}

// Capacity persists across drain cycles: once the deque has grown to
// its high-water occupancy, oscillating around empty must not grow it
// further (the data path relies on this for steady-state zero
// allocation).
TEST(VecDequeTest, CapacityPersistsAcrossDrainCycles) {
  VecDeque<uint64_t> d;
  for (uint64_t i = 0; i < 100; i++) d.push_back(i + 0);
  const size_t cap = d.capacity();
  for (int cycle = 0; cycle < 50; cycle++) {
    while (!d.empty()) d.pop_front();
    for (uint64_t i = 0; i < 100; i++) {
      if (i % 3 == 0) {
        d.push_front(i + 0);
      } else {
        d.push_back(i + 0);
      }
    }
  }
  EXPECT_EQ(d.capacity(), cap);
}

// Randomized parity against std::deque, with enough churn to exercise
// wraparound and growth mid-wrap.
TEST(VecDequeTest, RandomizedParityWithStdDeque) {
  VecDeque<uint64_t> d;
  std::deque<uint64_t> ref;
  std::mt19937_64 rng(0xD05E);
  for (int step = 0; step < 100000; step++) {
    switch (rng() % 4) {
      case 0:
        d.push_back(rng());
        ref.push_back(d[d.size() - 1]);
        break;
      case 1:
        d.push_front(rng());
        ref.push_front(d[0]);
        break;
      default:
        if (!ref.empty()) {
          ASSERT_EQ(d.front(), ref.front());
          d.pop_front();
          ref.pop_front();
        }
    }
    ASSERT_EQ(d.size(), ref.size());
  }
  for (size_t i = 0; i < ref.size(); i++) EXPECT_EQ(d[i], ref[i]);
}

}  // namespace
}  // namespace redy
