#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "common/zipfian.h"

namespace redy {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing cache");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing cache");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    REDY_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("x");
    return 7;
  };
  auto consumer = [&](bool fail) -> Status {
    int v = 0;
    REDY_ASSIGN_OR_RETURN(v, producer(fail));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(consumer(false).ok());
  EXPECT_TRUE(consumer(true).IsNotFound());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(ZipfianTest, SamplesInRange) {
  ZipfianGenerator gen(1000, 0.99, 3);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(gen.Next(), 1000u);
  }
}

TEST(ZipfianTest, SkewFavorsSmallRanks) {
  ZipfianGenerator gen(10000, 0.99, 3);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; i++) counts[gen.Next()]++;
  // Rank 0 should dominate: ~10% of draws for theta=0.99, n=10k.
  EXPECT_GT(counts[0], n / 20);
  // And far exceed a mid-rank item.
  EXPECT_GT(counts[0], 50 * (counts[5000] + 1));
}

TEST(ZipfianTest, ScrambledSpreadsHotKeys) {
  ScrambledZipfianGenerator gen(10000, 0.99, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; i++) counts[gen.Next()]++;
  // The hottest key is no longer key 0 in general, but some key is hot.
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 100000 / 20);
}

TEST(HistogramTest, PercentilesAreOrderedAndTight) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; v++) h.Add(v);
  EXPECT_EQ(h.count(), 10000u);
  const uint64_t p50 = h.Percentile(0.50);
  const uint64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.05);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  a.Add(100);
  b.Add(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_EQ(a.min(), 100u);
}

TEST(HistogramTest, EmptyHistogramIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_DOUBLE_EQ(ToMicros(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
}

}  // namespace
}  // namespace redy
